"""Determinism tests for the process-parallel benchmark orchestrator.

The contract (see ``repro.bench.orchestrator``): for any experiment and any
``jobs`` value, the merged :class:`FigureResult` is identical — same rows,
same order, same notes — to running the figure function directly.
"""

import pytest

from repro.bench.figures import ALL_EXPERIMENTS
from repro.bench.orchestrator import (
    PARALLEL_EXPERIMENTS,
    normalize_overrides,
    plan_cells,
    run_experiment,
)

# Small enough to run in seconds, big enough for multiple cells per axis.
FIG10_SMALL = {"page_sizes": (4096, 8192), "sizes": (2_000,), "searches": 20}


def result_payload(result):
    return (result.columns, result.rows, result.notes)


def test_plan_cells_splits_product_axes():
    cells = plan_cells("fig10", FIG10_SMALL)
    assert len(cells) == 2  # 2 page sizes x 1 size
    assert [c["page_sizes"] for c in cells] == [(4096,), (8192,)]
    assert all(c["sizes"] == (2_000,) for c in cells)
    assert all(c["searches"] == 20 for c in cells)


def test_plan_cells_orders_cells_like_the_nested_loops():
    cells = plan_cells("fig10", {"page_sizes": (4, 8), "sizes": (10, 20)})
    # page size is the outer loop in fig10 itself.
    assert [(c["page_sizes"], c["sizes"]) for c in cells] == [
        ((4,), (10,)),
        ((4,), (20,)),
        ((8,), (10,)),
        ((8,), (20,)),
    ]


def test_unlisted_experiments_run_as_one_cell():
    for name in ALL_EXPERIMENTS:
        if name not in PARALLEL_EXPERIMENTS:
            assert len(plan_cells(name)) == 1, name


def test_rng_coupled_sweeps_are_not_split():
    """fig13/fig14 panels share one workload whose RNG threads through
    panels — splitting them would change which keys each panel draws."""
    assert "fig13" not in PARALLEL_EXPERIMENTS
    assert "fig14" not in PARALLEL_EXPERIMENTS


def test_orchestrated_run_matches_direct_call():
    direct = ALL_EXPERIMENTS["fig10"](**FIG10_SMALL)
    orchestrated = run_experiment("fig10", FIG10_SMALL, jobs=1)
    assert result_payload(orchestrated) == result_payload(direct)


def test_jobs_2_is_identical_to_jobs_1():
    serial = run_experiment("fig10", FIG10_SMALL, jobs=1)
    parallel = run_experiment("fig10", FIG10_SMALL, jobs=2)
    assert result_payload(parallel) == result_payload(serial)


def test_single_cell_experiment_through_orchestrator():
    overrides = {"num_keys": 2_000, "searches": 20, "nonleaf_sizes": (128,),
                 "cache_first_sizes": (512,)}
    direct = ALL_EXPERIMENTS["fig11"](**overrides)
    orchestrated = run_experiment("fig11", overrides, jobs=4)  # still one cell
    assert result_payload(orchestrated) == result_payload(direct)


def test_unknown_experiment_and_bad_jobs_raise():
    with pytest.raises(KeyError):
        run_experiment("no-such-figure")
    with pytest.raises(ValueError):
        run_experiment("fig10", FIG10_SMALL, jobs=0)


def test_unknown_override_rejected_before_any_cell_runs():
    """Regression: ``--set nonsense=5`` used to die with a bare TypeError
    deep inside a worker (or be silently dropped); now the bad name is
    rejected up front, listing the valid parameters."""
    with pytest.raises(ValueError, match="no parameter\\(s\\) nonsense"):
        normalize_overrides("fig10", {"nonsense": 5})
    with pytest.raises(ValueError, match="valid --set names"):
        run_experiment("fig10", {"nonsense": 5})


def test_scalar_override_coerced_onto_sequence_axis():
    """Regression: ``--set sizes=2000`` parses to the scalar int 2000,
    which the cell planner then tried to iterate (the committed CI
    perf-smoke line hit exactly this).  Scalars aimed at sequence axes
    now become one-element tuples."""
    checked = normalize_overrides("fig10", {"sizes": 2_000, "searches": 20})
    assert checked["sizes"] == (2_000,)
    assert checked["searches"] == 20  # scalar parameter stays scalar
    result = run_experiment(
        "fig10", {"page_sizes": (4096,), "sizes": 2_000, "searches": 20}, jobs=2
    )
    assert result.rows


def test_cli_rejects_set_with_all(capsys):
    """Regression: ``all --set x=y`` silently dropped the override."""
    from repro.bench.__main__ import main

    with pytest.raises(SystemExit):
        main(["all", "--set", "searches=20"])
    assert "silently ignore" in capsys.readouterr().err
