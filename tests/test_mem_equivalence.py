"""Golden equivalence: batched trace engine == scalar path == frozen baseline.

The batched entry points (``read_run``/``write_run``/``prefetch_run``/
``probe_run``) are a pure performance rework — PR 4's contract is that they
change *nothing* observable.  Three independent checks:

1. The committed golden-trace fixture (``tests/data/mem_golden_trace.json``,
   generated against the pre-batching engine) replays to field-identical
   ``MemoryStats`` and clocks through all three paths: the frozen
   :class:`~repro.mem.legacy.LegacyMemorySystem`, the current engine's
   scalar methods, and the current engine's batched methods.
2. A hypothesis property: any ``read_run`` decomposes into per-line scalar
   reads (and likewise for the other composite ops) on the same engine.
3. Random mixed-op streams, including cache flushes, agree across all three
   paths under both the default and a stressed (tiny-cache, few-MSHR)
   geometry.
"""

import json
import random
from dataclasses import fields
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.btree.trace import Tracer, replay_ops
from repro.mem import CpuCostModel, MemoryConfig, MemorySystem
from repro.mem.legacy import LegacyMemorySystem, ScalarTracer
from repro.mem.stats import MemoryStats

FIXTURE = Path(__file__).parent / "data" / "mem_golden_trace.json"

STAT_FIELDS = [f.name for f in fields(MemoryStats) if f.name != "extra"]


def fingerprint(mem) -> dict:
    state = {name: getattr(mem.stats, name) for name in STAT_FIELDS}
    state["now"] = mem.now
    return state


def load_cases():
    with open(FIXTURE) as handle:
        payload = json.load(handle)
    return payload["cases"]


CASES = load_cases()


# -- 1. committed fixture, three paths ----------------------------------------


@pytest.mark.parametrize("case", CASES, ids=[c["name"] for c in CASES])
@pytest.mark.parametrize(
    "make_tracer",
    [
        lambda cfg: ScalarTracer(LegacyMemorySystem(cfg, CpuCostModel())),
        lambda cfg: ScalarTracer(MemorySystem(cfg, CpuCostModel())),
        lambda cfg: Tracer(MemorySystem(cfg, CpuCostModel())),
    ],
    ids=["legacy-engine", "scalar-path", "batched-path"],
)
def test_golden_trace_replays_identically(case, make_tracer):
    tracer = make_tracer(MemoryConfig(**case["config"]))
    replay_ops([tuple(op) for op in case["ops"]], tracer)
    assert fingerprint(tracer.mem) == case["expected"]


def test_fixture_is_nontrivial():
    """The fixture must actually exercise the interesting machinery."""
    for case in CASES:
        expected = case["expected"]
        assert expected["memory_fetches"] > 0
        assert expected["l1_hits"] > 0
        assert expected["now"] > 0
    assert any(c["expected"]["prefetch_covered"] > 0 for c in CASES)
    assert any(c["expected"]["l2_hits"] > 0 for c in CASES)


# -- 2. hypothesis: composite ops decompose into scalar ops --------------------

fast = settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])

# Small address space so lines collide and hit every cache/MSHR path; the
# stressed geometry keeps evictions and handler pressure frequent.
STRESS_CONFIG = dict(l1_size=512, l1_assoc=2, l2_size=2048, l2_assoc=4, miss_handlers=4)

_access = st.tuples(
    st.sampled_from(["read", "write", "prefetch", "probe"]),
    st.integers(0, 8192),
    st.integers(1, 400),
)


@fast
@given(ops=st.lists(_access, min_size=1, max_size=60))
def test_batched_run_equals_scalar_expansion(ops):
    scalar = MemorySystem(MemoryConfig(**STRESS_CONFIG), CpuCostModel())
    batched = MemorySystem(MemoryConfig(**STRESS_CONFIG), CpuCostModel())
    for kind, address, nbytes in ops:
        if kind == "read":
            scalar.read(address, nbytes)
            batched.read_run(address, nbytes)
        elif kind == "write":
            scalar.write(address, nbytes)
            batched.write_run(address, nbytes)
        elif kind == "prefetch":
            scalar.prefetch(address, nbytes)
            batched.prefetch_run(address, nbytes)
        else:
            scalar.read(address, nbytes)
            scalar.probe_penalty()
            batched.probe_run(address, nbytes)
        assert fingerprint(scalar) == fingerprint(batched)


@fast
@given(address=st.integers(0, 1 << 40), nbytes=st.integers(1, 2048))
def test_read_run_equals_n_scalar_reads(address, nbytes):
    """read_run(a, n) == one scalar read per touched line, in order."""
    scalar = MemorySystem()
    batched = MemorySystem()
    batched.read_run(address, nbytes)
    scalar.read(address, nbytes)
    assert fingerprint(scalar) == fingerprint(batched)
    line_size = scalar.config.line_size
    nlines = (address + nbytes - 1) // line_size - address // line_size + 1
    assert batched.stats.accesses == nlines


# -- 3. random mixed streams across all three paths ----------------------------


def _random_ops(rng, count):
    ops = []
    for __ in range(count):
        roll = rng.random()
        if roll < 0.35:
            ops.append(("probe", rng.randrange(0, 16384), 4))
        elif roll < 0.55:
            ops.append(("read", rng.randrange(0, 16384), rng.choice((4, 8, 64, 256))))
        elif roll < 0.70:
            ops.append(("prefetch", rng.randrange(0, 16384), rng.choice((64, 512, 832))))
        elif roll < 0.80:
            ops.append(("write", rng.randrange(0, 16384), rng.choice((4, 64))))
        elif roll < 0.90:
            ops.append(("busy", float(rng.randrange(1, 20))))
        elif roll < 0.97:
            ops.append(("visit_node",))
        else:
            ops.append(("clear",))
    return ops


@pytest.mark.parametrize("seed", [1, 2, 3])
@pytest.mark.parametrize(
    "config_kwargs", [{}, STRESS_CONFIG], ids=["default-geometry", "stress-geometry"]
)
def test_random_streams_agree_across_engines(seed, config_kwargs):
    ops = _random_ops(random.Random(seed), 800)
    results = []
    for make_tracer in (
        lambda cfg: ScalarTracer(LegacyMemorySystem(cfg, CpuCostModel())),
        lambda cfg: ScalarTracer(MemorySystem(cfg, CpuCostModel())),
        lambda cfg: Tracer(MemorySystem(cfg, CpuCostModel())),
    ):
        tracer = make_tracer(MemoryConfig(**config_kwargs))
        replay_ops(ops, tracer)
        results.append(fingerprint(tracer.mem))
    assert results[0] == results[1] == results[2]
