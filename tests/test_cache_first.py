"""Tests for the cache-first fpB+-Tree."""

import numpy as np
import pytest

from repro.baselines import DiskBPlusTree
from repro.btree.context import TreeEnvironment
from repro.core.cache_first import PAGE_LEAF, PAGE_NONLEAF, PAGE_OVERFLOW, CacheFirstFpTree
from repro.mem import MemorySystem

from index_contract import IndexContract, dense_keys


class TestCacheFirstContract(IndexContract):
    def make_index(self, **kwargs):
        kwargs.setdefault("page_size", 1024)
        kwargs.setdefault("buffer_pages", 512)
        env_kwargs = {k: v for k, v in kwargs.items() if k != "num_keys_hint"}
        return CacheFirstFpTree(
            TreeEnvironment(**env_kwargs), num_keys_hint=kwargs.get("num_keys_hint", 100_000)
        )


class TestCacheFirstPlacement:
    def make_tree(self, page_size=4096, n_hint=100_000, **kw):
        return CacheFirstFpTree(
            TreeEnvironment(page_size=page_size, buffer_pages=1024, **kw), num_keys_hint=n_hint
        )

    def test_leaf_pages_hold_only_leaves(self):
        tree = self.make_tree()
        keys = dense_keys(30000)
        tree.bulkload(keys, keys)
        for pid in tree.leaf_page_ids():
            page = tree.store.page(pid)
            assert page.kind == PAGE_LEAF
            assert all(node.is_leaf for node in page.nodes())
        tree.validate()

    def test_parent_and_children_share_pages(self):
        """Aggressive placement: some children co-locate with their parent."""
        tree = self.make_tree(page_size=16384)
        keys = dense_keys(200_000)
        tree.bulkload(keys, keys)
        root = tree.root
        assert not root.is_leaf
        same_page = sum(1 for child in root.children if child.pid == root.pid)
        # With 16KB pages / Table 2 geometry, ~22 of 69 children co-locate.
        assert same_page > 0
        assert same_page < root.count

    def test_leaf_parents_in_overflow_pages(self):
        tree = self.make_tree(page_size=4096)
        keys = dense_keys(100_000)
        tree.bulkload(keys, keys)
        assert tree.overflow_page_count() > 0
        kinds = {tree.store.page(pid).kind for pid in tree._overflow_pids}
        assert kinds == {PAGE_OVERFLOW}

    def test_full_levels_matches_paper_example(self):
        # 16KB pages, 704B nodes: 23 slots, 69-way fan-out -> 1 full level.
        tree = self.make_tree(page_size=16384, n_hint=10_000_000)
        if tree.node_bytes == 704:
            assert tree.full_levels == 1
            assert tree.slots_per_page == 23

    def test_leaf_page_contiguity_after_updates(self):
        tree = self.make_tree(page_size=1024)
        keys = dense_keys(3000)
        tree.bulkload(keys, keys)
        rng = np.random.default_rng(8)
        for key in rng.integers(1, 9000, size=800):
            tree.insert(int(key), 7)
        tree.validate()  # includes the contiguous-siblings check
        assert tree.leaf_page_splits > 0

    def test_jump_pointer_array_tracks_leaf_pages(self):
        tree = self.make_tree(page_size=1024)
        keys = dense_keys(5000)
        tree.bulkload(keys, keys)
        assert tree.jump_pointers.to_list() == tree.leaf_page_ids()
        for key in range(2, 5000, 3):
            tree.insert(key, 1)
        assert tree.jump_pointers.to_list() == tree.leaf_page_ids()

    def test_nonleaf_page_split_keeps_subtrees_together(self):
        """Figure 9(c): after heavy growth, non-leaf pages split cleanly."""
        tree = self.make_tree(page_size=1024)
        for key in range(30000):
            tree.insert(key, key)
        assert tree.nonleaf_page_splits > 0
        tree.validate()

    def test_mature_tree_space_overhead_grows(self):
        """Figure 16(b)'s direction: placement decays under churn."""
        bulk = self.make_tree(page_size=1024)
        keys = dense_keys(6000)
        bulk.bulkload(keys, keys)
        mature = self.make_tree(page_size=1024)
        mature.bulkload(keys[:600], [k for k in keys[:600]])
        rng = np.random.default_rng(12)
        for key in keys[600:]:
            mature.insert(key, key)
        assert mature.num_pages > bulk.num_pages
        mature.validate()


class TestCacheFirstCacheBehaviour:
    def build_pair(self, n=60000, page_size=16384):
        mem = MemorySystem()
        cf = CacheFirstFpTree(
            TreeEnvironment(page_size=page_size, mem=mem, buffer_pages=2048), num_keys_hint=n
        )
        disk = DiskBPlusTree(TreeEnvironment(page_size=page_size, mem=mem, buffer_pages=2048))
        keys = dense_keys(n)
        with mem.paused():
            cf.bulkload(keys, keys)
            disk.bulkload(keys, keys)
        return cf, disk, mem, keys

    def measure(self, fn, mem, items):
        mem.clear_caches()
        with mem.measure() as phase:
            for item in items:
                fn(item)
        return phase

    def test_search_beats_disk_optimized(self):
        cf, disk, mem, keys = self.build_pair()
        rng = np.random.default_rng(1)
        picks = [int(k) for k in rng.choice(keys, size=80)]
        cf_phase = self.measure(cf.search, mem, picks)
        disk_phase = self.measure(disk.search, mem, picks)
        assert cf_phase.total_cycles < disk_phase.total_cycles

    def test_insertion_much_faster_than_disk_optimized(self):
        mem = MemorySystem()
        cf = CacheFirstFpTree(
            TreeEnvironment(page_size=16384, mem=mem, buffer_pages=2048), num_keys_hint=60000
        )
        disk = DiskBPlusTree(TreeEnvironment(page_size=16384, mem=mem, buffer_pages=2048))
        keys = dense_keys(60000)
        with mem.paused():
            cf.bulkload(keys, keys, fill=0.7)
            disk.bulkload(keys, keys, fill=0.7)
        rng = np.random.default_rng(2)
        picks = [int(k) + 1 for k in rng.choice(keys, size=60)]
        cf_phase = self.measure(lambda k: cf.insert(k, 1), mem, picks)
        disk_phase = self.measure(lambda k: disk.insert(k, 1), mem, picks)
        assert disk_phase.total_cycles > 4 * cf_phase.total_cycles

    def test_range_scan_beats_disk_optimized(self):
        cf, disk, mem, keys = self.build_pair()
        lo, hi = keys[1000], keys[50000]
        mem.clear_caches()
        with mem.measure() as cf_phase:
            cf_result = cf.range_scan(lo, hi)
        mem.clear_caches()
        with mem.measure() as disk_phase:
            disk_result = disk.range_scan(lo, hi)
        assert cf_result == disk_result
        assert cf_phase.total_cycles < disk_phase.total_cycles

    def test_same_page_descent_skips_buffer_manager(self):
        """Section 3.2.2: child on the same page costs no pool access."""
        cf, __, mem, keys = self.build_pair(n=200_000)
        mem.clear_caches()
        rng = np.random.default_rng(6)
        picks = [int(k) for k in rng.choice(keys, size=60)]
        before = cf.pool.hits + cf.pool.misses
        for key in picks:
            cf.search(key)
        pool_accesses = (cf.pool.hits + cf.pool.misses) - before
        # Co-location makes average page accesses per search less than the
        # number of node levels (some children share the parent's page).
        assert pool_accesses / len(picks) < cf.height - 0.1
