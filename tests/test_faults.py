"""Tests for the fault-injection & resilience layer.

Covers: fault plans and the deterministic injector, typed disk faults,
page checksums (store + buffer-pool boundary), the DES timeout/race
helpers, retrying and hedged reads in the AsyncPageReader, and graceful
degradation in the MiniDbms scan path.
"""

import dataclasses
import random

import pytest

from repro.des import Environment, WaitTimeout, first_success, with_timeout
from repro.dbms import MiniDbms
from repro.faults import (
    DiskFailedError,
    DiskFaultProfile,
    DiskTimeoutError,
    FaultInjector,
    FaultPlan,
    PageChecksumError,
    ReadFailedError,
    ReadOutcome,
)
from repro.storage import (
    AsyncPageReader,
    BufferPool,
    BufferPoolExhausted,
    DiskArray,
    DiskParameters,
    PageStore,
    RetryPolicy,
    StorageConfig,
)


class FakePage:
    def __init__(self, label):
        self.label = label


def make_config(num_disks=1, frames=64, page_size=4096):
    return StorageConfig(
        page_size=page_size,
        num_disks=num_disks,
        buffer_pool_pages=frames,
        disk=DiskParameters(
            seek_time_us=5000,
            rotational_latency_us=3000,
            track_to_track_us=1000,
            transfer_rate_bytes_per_us=40.0,
        ),
    )


def make_stack(num_disks=1, frames=64, plan=None, mirrored=False, policy=None, seed=0):
    env = Environment()
    config = make_config(num_disks=num_disks, frames=frames)
    store = PageStore(config.page_size)
    pool = BufferPool(config, store)
    injector = FaultInjector(plan) if plan is not None else None
    disks = DiskArray(env, config, injector=injector, mirrored=mirrored)
    reader = AsyncPageReader(env, disks, pool, policy=policy, seed=seed)
    return env, store, pool, disks, reader


RANDOM_READ_US = 5000 + 3000 + 4096 / 40.0


# -- plans and injector ---------------------------------------------------------


class TestFaultPlan:
    def test_profile_lookup_falls_back_to_default(self):
        limp = DiskFaultProfile(limp_factor=4.0)
        plan = FaultPlan(default=DiskFaultProfile(corrupt_rate=0.1), disks={2: limp})
        assert plan.profile(2) is limp
        assert plan.profile(0).corrupt_rate == 0.1

    def test_is_clean(self):
        assert FaultPlan().is_clean
        assert not FaultPlan.uniform(corrupt_rate=0.01).is_clean
        assert not FaultPlan.limping_disk(0, factor=2.0).is_clean
        assert not FaultPlan.disk_failure(1, at_us=5.0).is_clean

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"corrupt_rate": -0.1},
            {"corrupt_rate": 1.5},
            {"timeout_rate": 2.0},
            {"fail_at_us": -1.0},
            {"limp_factor": 0.5},
            {"limp_after_us": -3.0},
        ],
    )
    def test_profile_validation(self, kwargs):
        with pytest.raises(ValueError):
            DiskFaultProfile(**kwargs)

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(timeout_stall_multiplier=0.5)
        with pytest.raises(ValueError):
            FaultPlan(failed_response_us=-1.0)
        with pytest.raises(ValueError):
            FaultPlan(disks={-1: DiskFaultProfile()})


class TestFaultInjector:
    def test_same_seed_same_decisions(self):
        plan = FaultPlan.uniform(corrupt_rate=0.3, timeout_rate=0.2, seed=9)
        a = FaultInjector(plan)
        b = FaultInjector(plan)
        decisions_a = [a.decide(0, t).outcome for t in range(200)]
        decisions_b = [b.decide(0, t).outcome for t in range(200)]
        assert decisions_a == decisions_b
        assert ReadOutcome.CORRUPT in decisions_a
        assert ReadOutcome.TIMEOUT in decisions_a

    def test_streams_are_per_disk(self):
        plan = FaultPlan.uniform(corrupt_rate=0.5, seed=3)
        solo = FaultInjector(plan)
        expected = [solo.decide(1, 0).outcome for __ in range(50)]
        # Interleaving draws on disk 0 must not perturb disk 1's stream.
        mixed = FaultInjector(plan)
        got = []
        for __ in range(50):
            mixed.decide(0, 0)
            got.append(mixed.decide(1, 0).outcome)
        assert got == expected

    def test_limp_and_failure_windows(self):
        plan = FaultPlan(
            disks={
                0: DiskFaultProfile(limp_factor=8.0, limp_after_us=100.0),
                1: DiskFaultProfile(fail_at_us=50.0),
            }
        )
        injector = FaultInjector(plan)
        assert injector.decide(0, 99.0).latency_multiplier == 1.0
        assert injector.decide(0, 100.0).latency_multiplier == 8.0
        assert injector.decide(1, 49.0).outcome is ReadOutcome.OK
        assert injector.decide(1, 50.0).outcome is ReadOutcome.DISK_FAILED
        assert injector.limped_reads == 1
        assert injector.injected_disk_failures == 1


# -- config validation (satellite) ----------------------------------------------


class TestConfigValidation:
    @pytest.mark.parametrize("rate", [0.0, -40.0])
    def test_nonpositive_transfer_rate_rejected(self, rate):
        with pytest.raises(ValueError):
            DiskParameters(transfer_rate_bytes_per_us=rate)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"seek_time_us": -1.0},
            {"rotational_latency_us": -1.0},
            {"track_to_track_us": -0.5},
            {"sequential_window_blocks": -1},
        ],
    )
    def test_negative_timings_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DiskParameters(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"page_size": 0},
            {"page_size": -4096},
            {"page_size": 1000},  # not a power of two
            {"num_disks": 0},
            {"num_disks": -2},
            {"buffer_pool_pages": 0},
        ],
    )
    def test_storage_config_rejected(self, kwargs):
        defaults = dict(page_size=4096, num_disks=1, buffer_pool_pages=16)
        defaults.update(kwargs)
        with pytest.raises(ValueError):
            StorageConfig(**defaults)


# -- checksums ------------------------------------------------------------------


class TestChecksums:
    def test_stamped_on_every_write(self):
        store = PageStore(4096)
        pid = store.allocate(FakePage("a"))
        first = store.expected_checksum(pid)
        assert store.verify_checksum(pid)
        store.replace(pid, FakePage("b"))
        assert store.expected_checksum(pid) != first
        assert store.verify_checksum(pid)

    def test_place_stamps(self):
        store = PageStore(4096)
        store.place(7, FakePage("x"))
        assert store.verify_checksum(7)

    def test_corrupt_and_scrub(self):
        store = PageStore(4096)
        pid = store.allocate(FakePage("x"))
        store.corrupt_page(pid)
        assert not store.verify_checksum(pid)
        assert store.checksum(pid) != store.expected_checksum(pid)
        store.scrub(pid)
        assert store.verify_checksum(pid)

    def test_checksum_of_unallocated_page(self):
        store = PageStore(4096)
        with pytest.raises(KeyError):
            store.checksum(3)
        with pytest.raises(KeyError):
            store.corrupt_page(3)

    def test_pool_detects_media_rot_on_fill(self):
        config = make_config()
        store = PageStore(config.page_size)
        pool = BufferPool(config, store)
        pid = store.allocate(FakePage("x"))
        store.corrupt_page(pid)
        with pytest.raises(PageChecksumError):
            pool.access(pid)
        assert pool.checksum_failures == 1
        assert not pool.contains(pid)
        store.scrub(pid)
        pool.access(pid)
        assert pool.contains(pid)

    def test_pool_fill_rejects_wire_corruption(self):
        config = make_config()
        store = PageStore(config.page_size)
        pool = BufferPool(config, store)
        pid = store.allocate(FakePage("x"))
        delivered = store.expected_checksum(pid) ^ 0x1
        with pytest.raises(PageChecksumError):
            pool.fill(pid, delivered_checksum=delivered)
        assert not pool.contains(pid)
        pool.fill(pid, delivered_checksum=store.expected_checksum(pid))
        assert pool.contains(pid)


# -- buffer pool exhaustion (satellite) ------------------------------------------


class TestBufferPoolExhausted:
    def test_diagnostics_name_the_pinned_pages(self):
        config = make_config(frames=2)
        store = PageStore(config.page_size)
        pool = BufferPool(config, store)
        a, b, c = [store.allocate(FakePage(i)) for i in range(3)]
        with pool.pinned(a), pool.pinned(b):
            with pytest.raises(BufferPoolExhausted) as excinfo:
                pool.access(c)
        err = excinfo.value
        assert err.frames == 2
        assert err.pinned_pages == {a: 1, b: 1}
        assert f"page {a}" in str(err)

    def test_is_a_runtime_error(self):
        # Callers that caught the old RuntimeError keep working.
        assert issubclass(BufferPoolExhausted, RuntimeError)

    def test_sweep_terminates_even_with_ref_bits_set(self):
        config = make_config(frames=3)
        store = PageStore(config.page_size)
        pool = BufferPool(config, store)
        pids = [store.allocate(FakePage(i)) for i in range(3)]
        with pool.pinned(pids[0]), pool.pinned(pids[1]), pool.pinned(pids[2]):
            with pytest.raises(BufferPoolExhausted):
                pool.access(store.allocate(FakePage("d")))


# -- DES control helpers --------------------------------------------------------


class TestDesControl:
    def test_with_timeout_event_wins(self):
        env = Environment()

        def proc():
            value = yield with_timeout(env, env.timeout(5, value="done"), 10)
            return value

        assert env.run(until=env.process(proc())) == "done"
        env.run()  # drain the losing timer

    def test_with_timeout_expires(self):
        env = Environment()

        def slow():
            yield env.timeout(100)

        def proc():
            with pytest.raises(WaitTimeout):
                yield with_timeout(env, env.process(slow()), 10)
            return env.now

        assert env.run(until=env.process(proc())) == 10
        env.run()  # the abandoned process completes without incident

    def test_with_timeout_absorbs_late_failure(self):
        env = Environment()

        def failing():
            yield env.timeout(100)
            raise DiskTimeoutError(0, 0, 100.0)

        def proc():
            with pytest.raises(WaitTimeout):
                yield with_timeout(env, env.process(failing()), 10)

        env.run(until=env.process(proc()))
        env.run()  # late DiskTimeoutError must not crash the loop

    def test_first_success_skips_failures(self):
        env = Environment()

        def failing():
            yield env.timeout(1)
            raise DiskTimeoutError(0, 7, 1.0)

        def proc():
            race = first_success(env, [env.process(failing()), env.timeout(5, value="ok")])
            index, value = yield race
            return index, value

        assert env.run(until=env.process(proc())) == (1, "ok")

    def test_first_success_fails_only_when_all_fail(self):
        env = Environment()

        def failing(delay):
            yield env.timeout(delay)
            raise DiskTimeoutError(0, delay, float(delay))

        def proc():
            with pytest.raises(DiskTimeoutError) as excinfo:
                yield first_success(env, [env.process(failing(1)), env.process(failing(9))])
            return excinfo.value.page_id

        assert env.run(until=env.process(proc())) == 9  # the *last* failure

    def test_first_success_requires_events(self):
        env = Environment()
        with pytest.raises(ValueError):
            first_success(env, [])


# -- disk-level faults ----------------------------------------------------------


def run_demand(env, reader, pid):
    def proc():
        yield from reader.demand(pid)

    done = env.process(proc())
    env.run(until=done)


class TestDiskFaults:
    def test_limping_disk_multiplies_latency(self):
        plan = FaultPlan.limping_disk(0, factor=10.0)
        env, store, pool, disks, reader = make_stack(plan=plan)
        pid = store.allocate(FakePage("x"))
        run_demand(env, reader, pid)
        assert env.now == pytest.approx(10 * RANDOM_READ_US)

    def test_transient_timeout_is_typed_and_occupies_the_spindle(self):
        plan = FaultPlan(
            default=DiskFaultProfile(timeout_rate=1.0), timeout_stall_multiplier=4.0
        )
        env, store, pool, disks, reader = make_stack(plan=plan)
        pid = store.allocate(FakePage("x"))

        def proc():
            with pytest.raises(DiskTimeoutError) as excinfo:
                yield disks.read_page(pid)
            return excinfo.value

        err = env.run(until=env.process(proc()))
        assert err.disk_id == 0 and err.page_id == pid
        assert env.now == pytest.approx(4 * RANDOM_READ_US)

    def test_permanently_failed_disk_rejects_commands(self):
        plan = FaultPlan.disk_failure(0, at_us=0.0)
        env, store, pool, disks, reader = make_stack(plan=plan)
        pid = store.allocate(FakePage("x"))

        def proc():
            with pytest.raises(DiskFailedError):
                yield disks.read_page(pid)
            return env.now

        elapsed = env.run(until=env.process(proc()))
        assert elapsed == pytest.approx(plan.failed_response_us)

    def test_corrupt_delivery_flagged_on_receipt(self):
        plan = FaultPlan.uniform(corrupt_rate=1.0)
        env, store, pool, disks, reader = make_stack(plan=plan)
        pid = store.allocate(FakePage("x"))

        def proc():
            receipt = yield disks.read_page(pid)
            return receipt

        receipt = env.run(until=env.process(proc()))
        assert receipt.corrupt
        # The store media is intact — only this delivery was corrupt.
        assert store.verify_checksum(pid)

    def test_mirrored_replicas_on_distinct_disks(self):
        env, store, pool, disks, reader = make_stack(num_disks=4, mirrored=True)
        assert disks.replica_disks(1) == [1, 2]
        assert disks.replica_disks(3) == [3, 0]

    def test_mirroring_needs_two_disks(self):
        env = Environment()
        with pytest.raises(ValueError):
            DiskArray(env, make_config(num_disks=1), mirrored=True)


# -- retry policy ---------------------------------------------------------------


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            backoff_base_us=100.0,
            backoff_multiplier=2.0,
            backoff_cap_us=350.0,
            jitter_fraction=0.0,
        )
        rng = random.Random(0)
        delays = [policy.backoff_delay_us(retry, rng) for retry in (1, 2, 3, 4)]
        assert delays == [100.0, 200.0, 350.0, 350.0]

    def test_jitter_is_bounded_and_deterministic(self):
        policy = RetryPolicy(backoff_base_us=1000.0, jitter_fraction=0.25)
        a = [policy.backoff_delay_us(1, random.Random(7)) for __ in range(3)]
        assert a[0] == a[1] == a[2]
        assert 750.0 <= a[0] <= 1250.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"timeout_us": 0.0},
            {"backoff_base_us": -1.0},
            {"backoff_multiplier": 0.9},
            {"backoff_base_us": 10.0, "backoff_cap_us": 5.0},
            {"jitter_fraction": 1.5},
            {"hedge_after_us": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


# -- reliable reads -------------------------------------------------------------


class TestReliableReads:
    def test_retry_recovers_from_corruption(self):
        # First read corrupt, later ones clean: seed chosen so the first
        # draw on disk 0 fires the 50% corruption.
        plan = FaultPlan(seed=_seed_with_first_corrupt(), default=DiskFaultProfile(corrupt_rate=0.5))
        policy = RetryPolicy(jitter_fraction=0.0, backoff_base_us=100.0)
        env, store, pool, disks, reader = make_stack(plan=plan, policy=policy)
        pid = store.allocate(FakePage("x"))
        run_demand(env, reader, pid)
        assert pool.contains(pid)
        assert reader.checksum_failures >= 1
        assert reader.retries >= 1
        assert reader.backoff_us > 0

    def test_retry_exhaustion_raises_read_failed(self):
        plan = FaultPlan.uniform(corrupt_rate=1.0)
        policy = RetryPolicy(max_attempts=3, jitter_fraction=0.0)
        env, store, pool, disks, reader = make_stack(plan=plan, policy=policy)
        pid = store.allocate(FakePage("x"))

        def proc():
            with pytest.raises(ReadFailedError) as excinfo:
                yield from reader.demand(pid)
            return excinfo.value

        err = env.run(until=env.process(proc()))
        assert err.attempts == 3
        assert isinstance(err.last_error, PageChecksumError)
        assert reader.checksum_failures == 3

    def test_per_attempt_timeout_retries_on_mirror(self):
        # Disk 0 limps 100x; the per-attempt deadline abandons it and the
        # retry lands on the mirror (disk 1), which is healthy.
        plan = FaultPlan.limping_disk(0, factor=100.0)
        policy = RetryPolicy(
            timeout_us=2 * RANDOM_READ_US, jitter_fraction=0.0, backoff_base_us=100.0
        )
        env, store, pool, disks, reader = make_stack(
            num_disks=2, plan=plan, mirrored=True, policy=policy
        )
        pid = store.allocate(FakePage("x"))  # page 0: primary disk 0, mirror disk 1
        run_demand(env, reader, pid)
        assert pool.contains(pid)
        assert reader.timeouts == 1
        assert reader.retries == 1
        assert env.now < 5 * RANDOM_READ_US  # nowhere near the limped 100x

    def test_permanent_failure_falls_back_to_mirror(self):
        plan = FaultPlan.disk_failure(0, at_us=0.0)
        policy = RetryPolicy(jitter_fraction=0.0, backoff_base_us=100.0)
        env, store, pool, disks, reader = make_stack(
            num_disks=2, plan=plan, mirrored=True, policy=policy
        )
        pid = store.allocate(FakePage("x"))
        run_demand(env, reader, pid)
        assert pool.contains(pid)
        assert reader.faults_seen == 1

    def test_unmirrored_dead_disk_exhausts_cleanly(self):
        plan = FaultPlan.disk_failure(0, at_us=0.0)
        policy = RetryPolicy(max_attempts=2, jitter_fraction=0.0)
        env, store, pool, disks, reader = make_stack(plan=plan, policy=policy)
        pid = store.allocate(FakePage("x"))

        def proc():
            with pytest.raises(ReadFailedError) as excinfo:
                yield from reader.demand(pid)
            return excinfo.value

        err = env.run(until=env.process(proc()))
        assert isinstance(err.last_error, DiskFailedError)

    def test_hedged_read_beats_limping_primary(self):
        plan = FaultPlan.limping_disk(0, factor=20.0)
        policy = RetryPolicy(
            timeout_us=None,
            jitter_fraction=0.0,
            hedge_after_us=0.5 * RANDOM_READ_US,
        )
        env, store, pool, disks, reader = make_stack(
            num_disks=2, plan=plan, mirrored=True, policy=policy
        )
        pid = store.allocate(FakePage("x"))
        run_demand(env, reader, pid)
        assert pool.contains(pid)
        assert reader.hedges == 1
        assert reader.hedge_wins == 1
        # Hedge fired at 0.5x nominal, mirror served in 1x nominal.
        assert env.now == pytest.approx(1.5 * RANDOM_READ_US)
        env.run()  # the limping primary finishes without incident

    def test_hedge_not_launched_when_primary_is_fast(self):
        policy = RetryPolicy(timeout_us=None, hedge_after_us=5 * RANDOM_READ_US)
        env, store, pool, disks, reader = make_stack(num_disks=2, mirrored=True, policy=policy)
        pid = store.allocate(FakePage("x"))
        run_demand(env, reader, pid)
        assert reader.hedges == 0
        assert disks.total_reads == 1

    def test_hedge_disabled_by_degradation_switch(self):
        plan = FaultPlan.limping_disk(0, factor=20.0)
        policy = RetryPolicy(timeout_us=None, hedge_after_us=0.5 * RANDOM_READ_US)
        env, store, pool, disks, reader = make_stack(
            num_disks=2, plan=plan, mirrored=True, policy=policy
        )
        reader.hedge_enabled = False
        pid = store.allocate(FakePage("x"))
        run_demand(env, reader, pid)
        assert reader.hedges == 0
        assert env.now == pytest.approx(20 * RANDOM_READ_US)


def _seed_with_first_corrupt():
    """A seed whose first draw pair on disk 0 injects a corruption (rate 0.5)."""
    for seed in range(100):
        stream = random.Random((seed << 20) ^ 1)
        stream.random()  # timeout draw
        if stream.random() < 0.5:  # corrupt draw
            return seed
    raise AssertionError("no suitable seed in range")


# -- MiniDbms scans under faults -------------------------------------------------


@pytest.fixture(scope="module")
def small_db():
    return MiniDbms(num_rows=6000, num_disks=4, seed=2, mature=False, page_size=4096)


class TestFaultyScans:
    def test_fixed_seed_scan_is_bit_for_bit_deterministic(self, small_db):
        plan = FaultPlan.uniform(corrupt_rate=0.05, timeout_rate=0.02, seed=11)
        runs = [
            small_db.scan(prefetchers=4, fault_plan=plan, mirrored=True) for __ in range(2)
        ]
        assert runs[0] == runs[1]  # every field, including retry/backoff counters

    def test_faults_cost_time_never_correctness(self, small_db):
        # Same machinery (mirroring, retry policy) on both sides; only the
        # fault rates differ.
        clean = small_db.scan(prefetchers=4, fault_plan=FaultPlan(seed=3), mirrored=True)
        plan = FaultPlan.uniform(corrupt_rate=0.1, timeout_rate=0.05, seed=3)
        faulty = small_db.scan(prefetchers=4, fault_plan=plan, mirrored=True)
        assert faulty.row_count == clean.row_count
        assert faulty.pages_scanned == clean.pages_scanned
        assert faulty.elapsed_us >= clean.elapsed_us

    def test_all_injected_corruptions_detected_at_pool_boundary(self, small_db):
        # Retry-only mode (no hedging): every delivery is awaited, so every
        # injected corruption must surface as a checksum failure — zero
        # silent corruptions.
        plan = FaultPlan.uniform(corrupt_rate=0.2, seed=7)
        policy = RetryPolicy(timeout_us=None, jitter_fraction=0.0, max_attempts=8)
        stats = small_db.scan(
            prefetchers=2, fault_plan=plan, retry_policy=policy, hedge=False
        )
        clean = small_db.scan(prefetchers=2)
        assert stats.row_count == clean.row_count
        assert stats.checksum_failures > 0  # the plan actually fired
        assert stats.faults_seen == stats.checksum_failures  # no other fault types

    def test_hedging_recovers_limping_disk_throughput(self, small_db):
        clean = small_db.scan(prefetchers=4)
        limp = FaultPlan.limping_disk(0, factor=10.0, seed=5)
        retry_only = small_db.scan(prefetchers=4, fault_plan=limp, mirrored=True, hedge=False)
        hedged = small_db.scan(prefetchers=4, fault_plan=limp, mirrored=True, hedge=True)
        assert hedged.hedge_wins > 0
        assert hedged.row_count == retry_only.row_count == clean.row_count
        assert hedged.elapsed_us < retry_only.elapsed_us

    def test_degradation_ladder_sheds_hedging_then_prefetch(self, small_db):
        limp = FaultPlan.limping_disk(0, factor=10.0, seed=5)
        healthy = small_db.scan(prefetchers=4, fault_plan=limp, mirrored=True)
        tight = small_db.scan(
            prefetchers=4,
            fault_plan=limp,
            mirrored=True,
            deadline_us=healthy.elapsed_us * 0.3,
        )
        assert tight.degradation_level == 2
        assert tight.deadline_exceeded
        assert tight.row_count == healthy.row_count
        # Shedding prefetch means fewer prefetches were issued.
        assert tight.prefetches <= healthy.prefetches

    def test_generous_deadline_never_degrades(self, small_db):
        stats = small_db.scan(prefetchers=4, deadline_us=1e12)
        assert stats.degradation_level == 0
        assert not stats.deadline_exceeded

    def test_count_star_passes_resilience_kwargs_through(self, small_db):
        plan = FaultPlan.uniform(corrupt_rate=0.05, seed=1)
        stats = small_db.count_star(prefetchers=2, fault_plan=plan, mirrored=True)
        assert stats.row_count == 6000

    def test_scan_validates_deadline(self, small_db):
        with pytest.raises(ValueError):
            small_db.scan(deadline_us=0.0)

    def test_clean_plan_adds_no_faults(self, small_db):
        stats = small_db.scan(prefetchers=2, fault_plan=FaultPlan(), mirrored=True)
        assert stats.faults_seen == 0
        assert stats.row_count == 6000
