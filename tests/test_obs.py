"""Tests for the observability subsystem (repro.obs).

Covers the metrics registry (counters, gauges, histograms, the MetricAttr
facade), the tracer (ring buffer, spans, determinism of track ids), the
Chrome-trace exporter and validator, the DES observer hook, and the
end-to-end contracts on ``MiniDbms.scan(trace=True)``: no simulated-time
drift, byte-identical exports per seed, and trace/stats reconciliation.
"""

import json

import pytest

from repro.des import Environment
from repro.dbms import MiniDbms
from repro.faults import FaultPlan
from repro.obs import (
    NULL_TRACER,
    Histogram,
    MetricAttr,
    MetricsRegistry,
    Observability,
    QueryTrace,
    Tracer,
    attach_des_observer,
    bind_counters,
    chrome_trace_dict,
    to_chrome_json,
    validate_chrome_trace,
)


# -- metrics -------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_memoized_and_incremented(self):
        reg = MetricsRegistry()
        c = reg.counter("reader.retries")
        c.inc()
        c.inc(3)
        assert reg.counter("reader.retries") is c
        assert reg.value("reader.retries") == 4

    def test_gauge_tracks_max(self):
        reg = MetricsRegistry()
        g = reg.gauge("pool.resident")
        g.set(5)
        g.set(2)
        assert g.value == 2
        assert g.max_value == 5

    def test_type_conflict_is_an_error(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x")

    def test_snapshot_is_sorted_and_deterministic(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a").inc(2)
        snap = reg.snapshot()
        assert list(snap) == ["a", "b"]
        assert json.dumps(snap) == json.dumps(reg.snapshot())

    def test_value_of_missing_metric_is_zero(self):
        assert MetricsRegistry().value("never.created") == 0


class TestHistogram:
    def test_buckets_and_stats(self):
        h = Histogram("lat", bounds=(10.0, 100.0, 1000.0))
        for v in (5, 50, 500, 5000):
            h.record(v)
        assert h.count == 4
        assert h.counts == [1, 1, 1, 1]  # one per bucket + overflow
        assert h.min == 5 and h.max == 5000
        assert h.mean == pytest.approx((5 + 50 + 500 + 5000) / 4)

    def test_quantile_returns_bucket_bound(self):
        h = Histogram("lat", bounds=(10.0, 100.0))
        for __ in range(9):
            h.record(1.0)
        h.record(99.0)
        assert h.quantile(0.5) == 10.0
        assert h.quantile(1.0) == 100.0

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram("bad", bounds=(10.0, 10.0))


class TestMetricAttrFacade:
    class Thing:
        retries = MetricAttr("retries")
        faults = MetricAttr("faults")

        def __init__(self, registry):
            bind_counters(self, registry, "thing.", ("retries", "faults"))

    def test_attribute_is_the_registry_counter(self):
        reg = MetricsRegistry()
        thing = self.Thing(reg)
        thing.retries += 1
        thing.retries += 1
        thing.faults = 7
        assert thing.retries == 2
        assert reg.value("thing.retries") == 2
        assert reg.value("thing.faults") == 7
        thing.retries = 0  # reset_stats() idiom
        assert reg.value("thing.retries") == 0


# -- tracer --------------------------------------------------------------------


class TestTracer:
    def test_null_tracer_records_nothing(self):
        NULL_TRACER.instant("x")
        NULL_TRACER.complete("y", "t", 0.0)
        NULL_TRACER.counter("c", 1)
        assert len(NULL_TRACER.records) == 0
        assert NULL_TRACER.emitted == 0

    def test_clock_attachment_and_now(self):
        t = Tracer()
        assert t.now() == 0.0
        t.clock = lambda: 42.5
        t.instant("tick", track="a")
        (rec,) = t.records
        assert rec.ts == 42.5 and rec.ph == "i" and rec.track == "a"

    def test_complete_span_duration(self):
        times = iter([10.0, 25.0])
        t = Tracer(clock=lambda: next(times))
        start = t.now()
        t.complete("work", "main", start, pages=3)
        (rec,) = t.records
        assert rec.ts == 10.0 and rec.dur == 15.0 and rec.args == {"pages": 3}

    def test_span_context_manager_records_errors(self):
        t = Tracer(clock=lambda: 0.0)
        with pytest.raises(ValueError):
            with t.span("risky", track="main"):
                raise ValueError("boom")
        (rec,) = t.records
        assert rec.args["error"] == "ValueError"

    def test_ring_buffer_drops_oldest(self):
        t = Tracer(clock=lambda: 0.0, capacity=3)
        for i in range(5):
            t.instant(f"e{i}")
        assert [r.name for r in t.records] == ["e2", "e3", "e4"]
        assert t.dropped == 2
        assert t.emitted == 5

    def test_track_ids_in_first_use_order(self):
        t = Tracer(clock=lambda: 0.0)
        t.instant("a", track="zebra")
        t.instant("b", track="apple")
        t.instant("c", track="zebra")
        assert t.tracks == {"zebra": 0, "apple": 1}

    def test_clear(self):
        t = Tracer(clock=lambda: 0.0)
        t.instant("x")
        t.clear()
        assert len(t.records) == 0 and t.emitted == 0 and t.tracks == {}


# -- exporter ------------------------------------------------------------------


def make_sample_tracer():
    times = iter([0.0, 5.0, 5.0, 8.0])
    t = Tracer(clock=lambda: next(times, 10.0))
    start = t.now()  # 0.0
    t.complete("read", "disk0", start, cat="disk", page=7)  # ends at 5.0
    t.instant("hedge", track="reader", page=7)
    t.counter("reads", 1)
    return t


class TestExporter:
    def test_chrome_dict_shape(self):
        d = chrome_trace_dict(make_sample_tracer(), label="unit")
        assert validate_chrome_trace(d) == []
        names = [e["name"] for e in d["traceEvents"]]
        # Metadata first (process + one thread per track), then records.
        assert names[0] == "process_name"
        assert names.count("thread_name") == 3  # disk0, reader, counters
        span = next(e for e in d["traceEvents"] if e["ph"] == "X")
        assert span["dur"] == 5.0 and span["args"] == {"page": 7}
        assert d["otherData"]["label"] == "unit"

    def test_json_is_deterministic(self):
        assert to_chrome_json(make_sample_tracer()) == to_chrome_json(make_sample_tracer())

    def test_validator_catches_problems(self):
        assert validate_chrome_trace("not json {") != []
        assert validate_chrome_trace({"nope": 1}) != []
        bad = {"traceEvents": [{"name": "x", "ph": "X", "ts": -1, "pid": 1, "tid": 0}]}
        problems = validate_chrome_trace(bad)
        assert any("ts" in p for p in problems)
        assert any("dur" in p for p in problems)
        bad = {"traceEvents": [{"name": "x", "ph": "?", "ts": 0, "pid": 1, "tid": 0}]}
        assert any("phase" in p for p in validate_chrome_trace(bad))


class TestQueryTrace:
    def test_count_and_counter_value(self):
        qt = QueryTrace(make_sample_tracer(), MetricsRegistry(), label="q")
        assert qt.count("read") == 1
        assert qt.count("read", ph="i") == 0
        assert qt.counter_value("reads") == 1
        assert qt.counter_value("missing") is None

    def test_write_roundtrip(self, tmp_path):
        qt = QueryTrace(make_sample_tracer(), MetricsRegistry())
        path = qt.write(str(tmp_path / "trace.json"))
        with open(path) as handle:
            assert validate_chrome_trace(json.load(handle)) == []

    def test_timeline_renders(self):
        text = QueryTrace(make_sample_tracer(), MetricsRegistry(), label="q").timeline()
        assert "disk0" in text and "read" in text
        assert "reads=1" in text


# -- DES observer hook --------------------------------------------------------


class TestDesObserver:
    def test_observer_sees_steps_without_changing_time(self):
        def run(observed):
            env = Environment()
            if observed is not None:
                attach_des_observer(env, observed)

            def proc():
                yield env.timeout(5)
                yield env.timeout(7)

            env.run(until=env.process(proc()))
            return env.now

        tracer = Tracer()
        plain = run(None)
        traced = run(tracer)
        assert traced == plain == 12
        kinds = {r.name for r in tracer.records}
        assert kinds == {"process", "step"}
        assert all(r.track == "des" for r in tracer.records)


# -- end-to-end: MiniDbms.scan(trace=True) ------------------------------------


@pytest.fixture(scope="module")
def traced_db():
    db = MiniDbms(num_rows=6_000, num_disks=4, page_size=4096, mature=False)
    db.enable_wal()
    for key in range(10_000_000, 10_000_010):
        db.insert(key)
    return db


SCAN_KW = dict(smp_degree=2, prefetchers=4, mirrored=True)


class TestTracedScan:
    def test_tracing_does_not_drift_simulated_time(self, traced_db):
        plan = FaultPlan.uniform(corrupt_rate=0.02, timeout_rate=0.01, seed=3)
        traced = traced_db.scan(trace=True, fault_plan=plan, **SCAN_KW)
        untraced = traced_db.scan(fault_plan=plan, **SCAN_KW)
        assert traced.elapsed_us == untraced.elapsed_us
        # The trace field is excluded from equality: the runs otherwise match.
        assert traced == untraced
        assert untraced.trace is None

    def test_export_is_byte_identical_per_seed(self, traced_db):
        plan = FaultPlan.uniform(corrupt_rate=0.02, timeout_rate=0.01, seed=3)
        a = traced_db.scan(trace=True, fault_plan=plan, **SCAN_KW)
        b = traced_db.scan(trace=True, fault_plan=plan, **SCAN_KW)
        assert a.trace.to_json() == b.trace.to_json()

    def test_export_validates_and_reconciles(self, traced_db):
        plan = FaultPlan.uniform(corrupt_rate=0.02, timeout_rate=0.01, seed=3)
        stats = traced_db.scan(trace=True, fault_plan=plan, **SCAN_KW)
        trace = stats.trace
        assert validate_chrome_trace(trace.to_json()) == []
        assert trace.counter_value("reads") == stats.disk_reads
        assert trace.counter_value("prefetches") == stats.prefetches
        assert trace.counter_value("hedges") == stats.hedges
        assert trace.counter_value("retries") == stats.retries
        assert trace.counter_value("wal_appends") == stats.wal_appends
        # Completion spans can only lag issued reads (in-flight at scan end).
        assert trace.count("read", ph="X") <= stats.disk_reads
        assert trace.count("page", ph="X") == stats.pages_scanned

    def test_caller_supplied_tracer_is_used(self, traced_db):
        tracer = Tracer(capacity=1 << 16)
        stats = traced_db.scan(trace=tracer, **SCAN_KW)
        assert stats.trace.tracer is tracer
        assert len(tracer.records) > 0

    def test_explain_with_and_without_trace(self, traced_db):
        stats = traced_db.scan(trace=True, **SCAN_KW)
        text = stats.explain()
        assert "disk reads" in text and "trace 'scan'" in text
        bare = traced_db.scan(**SCAN_KW).explain()
        assert "scan(trace=True)" in bare

    def test_untraced_scan_attaches_nothing(self, traced_db):
        assert traced_db.scan(**SCAN_KW).trace is None


class TestObservability:
    def test_default_bundle_is_disabled(self):
        obs = Observability()
        assert obs.tracer is NULL_TRACER
        assert not obs.tracing

    def test_enabled_bundle(self):
        obs = Observability(tracer=Tracer())
        assert obs.tracing
