"""Reusable conformance suite for every Index implementation.

Each concrete tree's test module subclasses :class:`IndexContract` and
provides ``make_index()``.  The suite checks functional behaviour only
(correctness of search/insert/delete/scan and structural invariants); tree-
specific layout and performance-model properties live in the per-tree test
modules.
"""

import numpy as np
import pytest

from repro.btree import ScanResult


def dense_keys(n, stride=3, start=10):
    """n distinct, sorted keys with gaps (so misses exist between keys)."""
    return list(range(start, start + stride * n, stride))


class IndexContract:
    """Mixin of behavioural tests; subclasses define make_index()."""

    #: Number of keys for the larger tests; subclasses may lower it.
    N = 3000

    def make_index(self, **kwargs):
        raise NotImplementedError

    def loaded(self, n=None, fill=1.0, **kwargs):
        n = n if n is not None else self.N
        keys = dense_keys(n)
        tids = [k * 2 + 1 for k in keys]
        index = self.make_index(**kwargs)
        index.bulkload(keys, tids, fill=fill)
        return index, keys, tids

    # -- bulkload + search ---------------------------------------------------

    def test_bulkload_then_search_every_key(self):
        index, keys, tids = self.loaded()
        for key, tid in zip(keys[:: max(1, len(keys) // 200)], tids[:: max(1, len(keys) // 200)]):
            assert index.search(key) == tid
        assert index.search(keys[0]) == tids[0]
        assert index.search(keys[-1]) == tids[-1]

    def test_search_missing_keys(self):
        index, keys, __ = self.loaded()
        assert index.search(keys[0] - 1) is None
        assert index.search(keys[-1] + 1) is None
        assert index.search(keys[0] + 1) is None  # gap between keys

    def test_bulkload_requires_sorted(self):
        index = self.make_index()
        with pytest.raises(ValueError):
            index.bulkload([5, 3, 4], [1, 2, 3])

    def test_bulkload_requires_empty_tree(self):
        index, __, __ = self.loaded(n=50)
        with pytest.raises(RuntimeError):
            index.bulkload([1, 2, 3], [1, 2, 3])

    def test_bulkload_length_mismatch(self):
        index = self.make_index()
        with pytest.raises(ValueError):
            index.bulkload([1, 2, 3], [1, 2])

    def test_bulkload_bad_fill_factor(self):
        index = self.make_index()
        with pytest.raises(ValueError):
            index.bulkload([1, 2], [1, 2], fill=0.0)
        index2 = self.make_index()
        with pytest.raises(ValueError):
            index2.bulkload([1, 2], [1, 2], fill=1.5)

    def test_empty_tree_operations(self):
        index = self.make_index()
        assert index.search(42) is None
        assert index.delete(42) is False
        assert index.range_scan(0, 100) == ScanResult(0, 0)
        assert index.num_entries == 0
        assert list(index.items()) == []

    def test_num_entries_after_bulkload(self):
        index, keys, __ = self.loaded()
        assert index.num_entries == len(keys)

    def test_validate_after_bulkload(self):
        index, __, __ = self.loaded()
        index.validate()

    def test_partial_fill_uses_more_pages(self):
        full, __, __ = self.loaded(fill=1.0)
        sparse, __, __ = self.loaded(fill=0.6)
        assert sparse.num_pages > full.num_pages

    def test_items_sorted_and_complete(self):
        index, keys, tids = self.loaded(n=500)
        got = list(index.items())
        assert got == sorted(zip(keys, tids))

    # -- insertion ---------------------------------------------------------------

    def test_insert_into_empty_tree(self):
        index = self.make_index()
        index.insert(7, 70)
        assert index.search(7) == 70
        assert index.num_entries == 1
        index.validate()

    def test_insert_below_and_above_range(self):
        index, keys, __ = self.loaded(n=500)
        index.insert(1, 11)
        index.insert(keys[-1] + 100, 22)
        assert index.search(1) == 11
        assert index.search(keys[-1] + 100) == 22
        index.validate()

    def test_insert_into_gaps(self):
        index, keys, __ = self.loaded(n=500)
        for key in keys[10:60]:
            index.insert(key + 1, key + 1)
        for key in keys[10:60]:
            assert index.search(key + 1) == key + 1
        index.validate()

    def test_inserts_force_splits(self):
        """Insert into a 100%-full tree so pages/nodes must split."""
        index, keys, __ = self.loaded(fill=1.0)
        rng = np.random.default_rng(7)
        new_keys = rng.choice(np.arange(1, keys[-1], 1), size=600, replace=False)
        inserted = 0
        for key in new_keys:
            key = int(key)
            if key % 3 == 1:  # avoid colliding with bulkloaded keys (k % 3 == 1)
                continue
            index.insert(key, key + 5)
            inserted += 1
        for key in new_keys:
            key = int(key)
            if key % 3 != 1:
                assert index.search(key) == key + 5
        assert index.num_entries == len(keys) + inserted
        index.validate()

    def test_sequential_inserts_from_scratch(self):
        index = self.make_index()
        for key in range(1000):
            index.insert(key, key * 2)
        for key in range(0, 1000, 37):
            assert index.search(key) == key * 2
        assert index.num_entries == 1000
        index.validate()

    def test_reverse_sequential_inserts(self):
        index = self.make_index()
        for key in range(1000, 0, -1):
            index.insert(key, key)
        assert index.num_entries == 1000
        assert [k for k, __ in index.items()] == list(range(1, 1001))
        index.validate()

    def test_duplicate_keys_allowed(self):
        index = self.make_index()
        for __ in range(5):
            index.insert(42, 1)
        assert index.range_scan(42, 42).count == 5
        assert index.search(42) == 1
        index.validate()

    def test_duplicates_spanning_node_boundaries(self):
        """Scans must start at the first duplicate, not the right sibling."""
        index = self.make_index()
        for __ in range(40):
            index.insert(500, 1)
        for key in range(100, 900, 7):
            index.insert(key, 2)
        assert index.range_scan(500, 500).count == 40
        nearby = [k for k in range(100, 900, 7) if 495 <= k <= 505]
        assert index.range_scan(495, 505).count == 40 + len(nearby)
        index.validate()

    # -- deletion -----------------------------------------------------------------

    def test_delete_existing_key(self):
        index, keys, __ = self.loaded(n=500)
        assert index.delete(keys[100]) is True
        assert index.search(keys[100]) is None
        assert index.num_entries == len(keys) - 1
        index.validate()

    def test_delete_missing_key(self):
        index, keys, __ = self.loaded(n=100)
        assert index.delete(keys[0] + 1) is False
        assert index.num_entries == len(keys)

    def test_delete_then_reinsert(self):
        index, keys, __ = self.loaded(n=200)
        index.delete(keys[50])
        index.insert(keys[50], 999)
        assert index.search(keys[50]) == 999
        index.validate()

    def test_delete_many(self):
        index, keys, tids = self.loaded(n=600)
        for key in keys[::2]:
            assert index.delete(key)
        for key, tid in zip(keys, tids):
            expected = None if key % 2 == int(keys[0]) % 2 and key in keys[::2] else tid
        for key, tid in zip(keys[1::2], tids[1::2]):
            assert index.search(key) == tid
        for key in keys[::2]:
            assert index.search(key) is None
        assert index.num_entries == len(keys) // 2
        index.validate()

    def test_delete_entire_tree(self):
        index, keys, __ = self.loaded(n=300)
        for key in keys:
            assert index.delete(key)
        assert index.num_entries == 0
        assert index.range_scan(0, keys[-1] + 10) == ScanResult(0, 0)
        index.validate()

    # -- range scans -----------------------------------------------------------------

    def test_full_range_scan(self):
        index, keys, tids = self.loaded()
        result = index.range_scan(0, keys[-1] + 1)
        assert result.count == len(keys)
        assert result.tid_sum == sum(tids)

    def test_subrange_scan_matches_reference(self):
        index, keys, tids = self.loaded()
        lo, hi = keys[123], keys[456]
        expected = [(k, t) for k, t in zip(keys, tids) if lo <= k <= hi]
        result = index.range_scan(lo, hi)
        assert result.count == len(expected)
        assert result.tid_sum == sum(t for __, t in expected)

    def test_scan_bounds_inclusive(self):
        index, keys, __ = self.loaded(n=100)
        assert index.range_scan(keys[3], keys[3]).count == 1
        assert index.range_scan(keys[3], keys[4]).count == 2

    def test_scan_bounds_between_keys(self):
        index, keys, __ = self.loaded(n=100)
        # Bounds falling in gaps between keys.
        assert index.range_scan(keys[3] + 1, keys[6] - 1).count == 2

    def test_scan_empty_when_inverted(self):
        index, keys, __ = self.loaded(n=100)
        assert index.range_scan(keys[10], keys[5]) == ScanResult(0, 0)

    def test_scan_outside_key_space(self):
        index, keys, __ = self.loaded(n=100)
        assert index.range_scan(0, keys[0] - 1).count == 0
        assert index.range_scan(keys[-1] + 1, keys[-1] + 100).count == 0

    def test_scan_after_mixed_updates(self):
        index, keys, tids = self.loaded(n=800)
        reference = dict(zip(keys, tids))
        rng = np.random.default_rng(11)
        for key in rng.choice(keys, size=100, replace=False):
            index.delete(int(key))
            del reference[int(key)]
        for key in range(2, 2000, 41):
            if key not in reference:
                index.insert(key, key)
                reference[key] = key
        lo, hi = keys[50], keys[-50]
        expected = [(k, t) for k, t in sorted(reference.items()) if lo <= k <= hi]
        result = index.range_scan(lo, hi)
        assert result.count == len(expected)
        assert result.tid_sum == sum(t for __, t in expected)
        index.validate()

    # -- leaf pages -----------------------------------------------------------------

    def test_leaf_page_ids_nonempty_and_unique(self):
        index, __, __ = self.loaded()
        pids = index.leaf_page_ids()
        assert len(pids) > 1
        assert len(set(pids)) == len(pids)

    # -- randomized mixed workload ----------------------------------------------------

    def test_fuzz_against_dict_reference(self):
        rng = np.random.default_rng(1234)
        keys = dense_keys(1500)
        tids = [k + 7 for k in keys]
        index = self.make_index()
        index.bulkload(keys, tids, fill=0.8)
        reference = dict(zip(keys, tids))
        universe = np.arange(1, keys[-1] + 500)
        for step in range(800):
            op = rng.integers(0, 10)
            key = int(rng.choice(universe))
            if op < 4:  # insert
                if key not in reference:
                    index.insert(key, key + 7)
                    reference[key] = key + 7
            elif op < 7:  # delete
                removed = index.delete(key)
                assert removed == (key in reference)
                reference.pop(key, None)
            else:  # search
                assert index.search(key) == reference.get(key)
        assert index.num_entries == len(reference)
        full = index.range_scan(0, int(universe[-1]) + 1)
        assert full.count == len(reference)
        assert full.tid_sum == sum(reference.values())
        index.validate()
