"""Tests for tree images (save/load round trips)."""

import numpy as np
import pytest

from repro import (
    CacheFirstFpTree,
    DiskBPlusTree,
    DiskFirstFpTree,
    ImageFormatError,
    MicroIndexTree,
    TreeEnvironment,
    dump_tree_bytes,
    load_tree,
    load_tree_bytes,
    save_tree,
)
from repro.mem import MemorySystem
from repro.workloads import KeyWorkload, build_mature_tree

FACTORIES = {
    "disk": lambda **kw: DiskBPlusTree(TreeEnvironment(page_size=1024, buffer_pages=256, **kw)),
    "micro": lambda **kw: MicroIndexTree(TreeEnvironment(page_size=1024, buffer_pages=256, **kw)),
    "fp-disk": lambda **kw: DiskFirstFpTree(TreeEnvironment(page_size=1024, buffer_pages=256, **kw)),
    "fp-cache": lambda **kw: CacheFirstFpTree(
        TreeEnvironment(page_size=1024, buffer_pages=256, **kw), num_keys_hint=10_000
    ),
}


def mature(kind, n=3000, seed=9):
    tree = FACTORIES[kind]()
    build_mature_tree(tree, KeyWorkload(n, seed=seed), bulk_fraction=0.8)
    return tree


@pytest.mark.parametrize("kind", sorted(FACTORIES))
def test_roundtrip_preserves_contents(kind):
    original = mature(kind)
    loaded = load_tree_bytes(dump_tree_bytes(original))
    assert loaded.num_entries == original.num_entries
    assert list(loaded.items()) == list(original.items())
    loaded.validate()


@pytest.mark.parametrize("kind", sorted(FACTORIES))
def test_roundtrip_preserves_page_layout(kind):
    """Loaded trees live at the same page ids (disk layout is preserved)."""
    original = mature(kind)
    loaded = load_tree_bytes(dump_tree_bytes(original))
    assert loaded.leaf_page_ids() == original.leaf_page_ids()
    assert loaded.num_pages == original.num_pages


@pytest.mark.parametrize("kind", sorted(FACTORIES))
def test_loaded_tree_is_fully_operational(kind):
    original = mature(kind)
    workload = KeyWorkload(3000, seed=9)
    loaded = load_tree_bytes(dump_tree_bytes(original))
    # Search.
    probe = int(workload.keys[100])
    assert loaded.search(probe) == original.search(probe)
    # Updates continue to work.
    loaded.insert(1, 11)
    assert loaded.search(1) == 11
    assert loaded.delete(probe)
    # Scans agree with the (unmodified) original modulo the two updates.
    full = loaded.range_scan(0, int(workload.keys[-1]) + 10)
    assert full.count == original.num_entries  # +1 insert, -1 delete
    loaded.validate()


def test_file_roundtrip(tmp_path):
    original = mature("fp-disk")
    path = str(tmp_path / "tree.fpbt")
    nbytes = save_tree(original, path)
    assert nbytes > 0
    loaded = load_tree(path)
    assert list(loaded.items()) == list(original.items())


def test_loaded_tree_can_attach_memory_system(tmp_path):
    original = mature("disk")
    data = dump_tree_bytes(original)
    mem = MemorySystem()
    loaded = load_tree_bytes(data, mem=mem)
    mem.clear_caches()
    loaded.search(int(KeyWorkload(3000, seed=9).keys[50]))
    assert mem.stats.total_cycles > 0


def test_key8_roundtrip():
    from repro.btree import KEY8

    tree = DiskBPlusTree(TreeEnvironment(page_size=1024, keyspec=KEY8, buffer_pages=64))
    keys = [(1 << 40) + i * 5 for i in range(500)]
    tree.bulkload(keys, range(500))
    loaded = load_tree_bytes(dump_tree_bytes(tree))
    assert loaded.search((1 << 40) + 250) == 50
    assert loaded.keyspec.size == 8


def test_bad_magic_rejected():
    with pytest.raises(ImageFormatError):
        load_tree_bytes(b"NOPE" + b"\0" * 100)


def test_truncated_image_rejected():
    data = dump_tree_bytes(mature("disk"))
    with pytest.raises(ImageFormatError):
        load_tree_bytes(data[: len(data) // 2])


def test_empty_tree_roundtrip():
    tree = FACTORIES["fp-disk"]()
    loaded = load_tree_bytes(dump_tree_bytes(tree))
    assert loaded.num_entries == 0
    assert loaded.search(42) is None
    loaded.insert(42, 7)
    assert loaded.search(42) == 7


def test_overflow_pages_restored():
    tree = CacheFirstFpTree(
        TreeEnvironment(page_size=4096, buffer_pages=1024), num_keys_hint=100_000
    )
    workload = KeyWorkload(60_000)
    keys, tids = workload.bulkload_arrays()
    tree.bulkload(keys, tids)
    assert tree.overflow_page_count() > 0
    loaded = load_tree_bytes(dump_tree_bytes(tree))
    assert loaded.overflow_page_count() == tree.overflow_page_count()
    loaded.validate()
