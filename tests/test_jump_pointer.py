"""Tests for the external jump-pointer array."""

import pytest

from repro.core import ExternalJumpPointerArray


def test_build_and_iterate():
    jpa = ExternalJumpPointerArray(chunk_capacity=4)
    jpa.build([10, 20, 30, 40, 50])
    assert jpa.to_list() == [10, 20, 30, 40, 50]
    assert len(jpa) == 5


def test_iter_from_middle():
    jpa = ExternalJumpPointerArray(chunk_capacity=4)
    jpa.build(range(0, 100, 10))
    assert list(jpa.iter_from(50)) == [50, 60, 70, 80, 90]


def test_insert_after_preserves_order():
    jpa = ExternalJumpPointerArray(chunk_capacity=4)
    jpa.build([1, 2, 3])
    jpa.insert_after(2, 99)
    assert jpa.to_list() == [1, 2, 99, 3]


def test_insert_after_last():
    jpa = ExternalJumpPointerArray(chunk_capacity=4)
    jpa.build([1, 2])
    jpa.insert_after(2, 3)
    assert jpa.to_list() == [1, 2, 3]


def test_chunk_split_on_overflow():
    jpa = ExternalJumpPointerArray(chunk_capacity=4)
    jpa.build([1])
    for i in range(2, 20):
        jpa.insert_after(i - 1, i)
    assert jpa.to_list() == list(range(1, 20))


def test_many_inserts_at_same_point():
    jpa = ExternalJumpPointerArray(chunk_capacity=4)
    jpa.build([100, 200])
    expected = [100]
    for pid in range(101, 130):
        jpa.insert_after(expected[-1], pid)
        expected.append(pid)
    assert jpa.to_list() == expected + [200]


def test_append_and_remove():
    jpa = ExternalJumpPointerArray(chunk_capacity=4)
    jpa.build([1, 2, 3])
    jpa.append(4)
    jpa.remove(2)
    assert jpa.to_list() == [1, 3, 4]


def test_append_to_empty():
    jpa = ExternalJumpPointerArray()
    jpa.append(7)
    assert jpa.to_list() == [7]


def test_locate_missing_pid_raises():
    jpa = ExternalJumpPointerArray()
    jpa.build([1])
    with pytest.raises(KeyError):
        jpa.insert_after(42, 43)


def test_hints_survive_chunk_splits():
    jpa = ExternalJumpPointerArray(chunk_capacity=4)
    jpa.build(range(20))
    # Splits shuffle pids between chunks; stale hints must self-repair.
    for i in range(100, 110):
        jpa.insert_after(10, i)
    assert list(jpa.iter_from(19)) == [19]


def test_rebuild_resets_state():
    jpa = ExternalJumpPointerArray(chunk_capacity=4)
    jpa.build([1, 2, 3])
    jpa.build([9, 8])
    assert jpa.to_list() == [9, 8]


def test_invalid_capacity():
    with pytest.raises(ValueError):
        ExternalJumpPointerArray(chunk_capacity=1)
