"""Server-level tests for ``admission_mode="batch"`` plus the PR's bugfix sweep.

Batched admission collects concurrent point lookups into size- and
deadline-bounded batches and executes each level-wise under one admission
token; the accounting (issue/complete per op, conservation identity,
per-op latencies) must be indistinguishable from the individual path.

Three bugs are pinned here, each demonstrated to fail on the pre-fix code:

* **Stale leaf-map scans** (``test_truncated_scan_follows_mid_descent_split``):
  ``serve_scan`` resolved its leaf span from a map captured before the
  descent's first yield, so a split landing mid-descent routed a truncated
  scan into the *old* leaf — a page that no longer held the start key.
  Pre-fix the scan returned the old leaf's entry count and never read the
  new sibling.
* **Batch deadline attribution** (``test_batch_timeout_attributed_per_op``):
  the batch runner armed one ``with_timeout`` for the whole batch, measured
  from execution start, and marked every unfinished op.  An op that waited
  out the batch window and exceeded its own issue-to-completion deadline
  was *not* flagged when the shared traversal finished quickly — pre-fix
  the run below recorded ``timeouts == 0`` although one op's latency was
  beyond the deadline.
* **Prefetch waves vs brownout**
  (``test_batched_waves_respect_brownout_cap_under_chaos``): see
  tests/test_batch_lookup.py for the unit form; here the full wiring —
  chaos-limped disks breach the SLO, the ladder shrinks
  ``max_outstanding_prefetches``, and subsequent batched waves must count
  ``prefetches_suppressed`` (pre-fix: 0 while waves kept issuing).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des import Environment
from repro.dbms.engine import MiniDbms
from repro.faults.schedule import ChaosSchedule
from repro.serve.loadgen import OpenLoopLoadGenerator
from repro.serve.resilience import BrownoutConfig, BrownoutController
from repro.serve.server import DbmsServer
from repro.storage import AsyncPageReader, BufferPool, DiskArray, RetryPolicy, StorageConfig
from repro.verify.linearizability import HistoryRecorder, check_linearizable
from repro.workloads.ops import OpMix

WINDOW_US = 2_000.0


def make_batch_server(seed: int = 3, *, num_rows: int = 300, page_size: int = 512,
                      admission_mode: str = "batch", concurrency: str = "none",
                      batch_max: int = 16, deadline_us=None, history: bool = False,
                      **kwargs) -> DbmsServer:
    db = MiniDbms(num_rows=num_rows, num_disks=2, page_size=page_size,
                  seed=seed, mature=False)
    server = DbmsServer(
        db, max_concurrency=kwargs.pop("max_concurrency", 8),
        queue_depth=kwargs.pop("queue_depth", 256),
        pool_frames=kwargs.pop("pool_frames", 32),
        page_process_us=50.0, seed=seed, concurrency=concurrency,
        admission_mode=admission_mode, batch_max=batch_max,
        batch_window_us=WINDOW_US, deadline_us=deadline_us, **kwargs,
    )
    if history:
        recorder = HistoryRecorder(clock=lambda: server.env.now)
        recorder.initial_keys = [int(k) for k in db._workload.keys]
        server.attach_history(recorder)
    return server


def submit_lookups(server: DbmsServer, keys, session_stride: int = 6):
    requests = []
    for i, key in enumerate(keys):
        request = server.make_request(("lookup", int(key)), session=f"s{i % session_stride}")
        requests.append(request)
        server.submit(request)
    return requests


def existing_keys(server: DbmsServer) -> list[int]:
    return [int(k) for k in server.db._workload.keys]


# -- batch collection mechanics ----------------------------------------------


def test_single_lookup_waits_for_the_window():
    server = make_batch_server()
    (request,) = submit_lookups(server, existing_keys(server)[:1])
    server.run()
    assert request.outcome == "ok" and request.rows == 1
    assert server.stats.batches == 1 and server.stats.batched_ops == 1
    # A lone lookup is only admitted once its batch window expires.
    assert request.admitted_at >= WINDOW_US
    assert request.queue_wait_us >= WINDOW_US
    assert server.stats.conserved()


def test_batch_closes_early_at_size_bound():
    server = make_batch_server(batch_max=4)
    keys = existing_keys(server)
    requests = submit_lookups(server, keys[:4] + [keys[0] - 1])
    server.run()
    # The first four filled a batch at t=0 (no window wait); the fifth
    # opened a new batch and waited out its window.
    assert [r.outcome for r in requests] == ["ok"] * 5
    assert [r.rows for r in requests] == [1, 1, 1, 1, 0]
    assert server.stats.batches == 2
    assert server.stats.batched_ops == 5
    assert all(r.admitted_at == 0.0 for r in requests[:4])
    assert requests[4].admitted_at >= WINDOW_US
    assert server.stats.conserved()


def test_batch_results_match_individual_mode():
    keys = None
    rows_by_mode = {}
    for mode in ("fifo", "batch"):
        server = make_batch_server(admission_mode=mode)
        if keys is None:
            existing = existing_keys(server)
            keys = existing[::7] + [existing[0] - 3, existing[-1] + 11, existing[5] + 1]
        requests = submit_lookups(server, keys)
        server.run()
        assert all(r.outcome == "ok" for r in requests)
        assert server.stats.conserved()
        rows_by_mode[mode] = [r.rows for r in requests]
    assert rows_by_mode["batch"] == rows_by_mode["fifo"]


def test_conservation_holds_mid_batch():
    server = make_batch_server()
    submit_lookups(server, existing_keys(server)[:6])
    # Freeze the simulation while the batch traversal is in flight.
    server.run(until=WINDOW_US + 5_000.0)
    assert server.stats.in_flight == 6
    assert server.stats.conserved()
    server.run()
    assert server.stats.in_flight == 0
    assert server.stats.completed == 6
    assert server.stats.conserved()


def test_whole_batch_sheds_when_admission_is_full():
    server = make_batch_server(max_concurrency=1, queue_depth=0)
    keys = existing_keys(server)
    # One scan holds the only token for tens of milliseconds...
    scan = server.make_request(("scan", keys[0], keys[-1]), session="bg")
    server.submit(scan)
    # ...so the batch closing at t=2ms finds no token and no queue room.
    requests = submit_lookups(server, keys[:3])
    server.run()
    assert scan.outcome == "ok"
    assert [r.outcome for r in requests] == ["shed"] * 3
    assert server.stats.shed_count == 3
    assert server.stats.batches == 1  # the batch still closed (then shed whole)
    assert server.stats.conserved()


# -- regression: per-op deadline attribution (fails pre-fix) ------------------


def run_three_op_batch(deadline_us=None):
    server = make_batch_server(deadline_us=deadline_us)
    keys = existing_keys(server)
    requests = submit_lookups(server, [keys[10], keys[150], keys[280]])
    server.run()
    return server, requests


def test_batch_timeout_attributed_per_op():
    """Only the op whose own issue-to-completion latency exceeds the
    deadline may be marked timed out — batchmates that finished inside
    their deadlines must not be, and vice versa.

    Pre-fix the runner armed a single batch-wide timer starting at batch
    *execution*: with the deadline chosen below (under the slowest op's
    latency but over the worker's runtime) the timer never fired, no op
    was flagged, and ``stats.timeouts`` stayed 0.
    """
    __, baseline = run_three_op_batch()
    lats = sorted(r.latency_us for r in baseline)
    assert lats[-1] - lats[-2] > 1_000.0, "probe keys must finish >1ms apart"
    deadline = lats[-1] - 500.0  # above every other latency, under the max
    assert deadline > lats[-2]

    server, requests = run_three_op_batch(deadline_us=deadline)
    for request in requests:
        assert request.timed_out == (request.latency_us > deadline), (
            f"rid {request.rid}: latency {request.latency_us} vs deadline "
            f"{deadline}, timed_out={request.timed_out}"
        )
    assert server.stats.timeouts == 1
    # Timed-out ops still run to completion (client-side abandonment only).
    assert all(r.outcome == "ok" for r in requests)
    assert server.stats.completed == 3
    assert server.stats.conserved()


# -- regression: stale leaf-map scan truncation (fails pre-fix) ---------------


def make_substrate(db: MiniDbms, frames: int = 48):
    env = Environment()
    config = StorageConfig(page_size=db.page_size, num_disks=db.num_disks,
                           buffer_pool_pages=frames, disk=db.disk_params)
    disks = DiskArray(env, config)
    pool = BufferPool(config, db.store)
    return env, AsyncPageReader(env, disks, pool)


def test_truncated_scan_follows_mid_descent_split():
    """A split landing between a scan's yields must not leave the scan on
    the stale side of the split boundary.

    The scan starts at the *largest* key of a mid-tree leaf; an inserter
    splits that leaf at t=500us (while the scan is waiting on its root
    demand), which moves the start key into the new right sibling.  A
    ``max_pages=1`` truncated scan must read the sibling that now holds
    the start key — pre-fix it read the old leaf (whose range no longer
    covers the key) and returned that page's count.
    """
    db = MiniDbms(num_rows=400, num_disks=2, page_size=512, seed=7, mature=False)
    env, reader = make_substrate(db)
    existing = set(int(k) for k in db._workload.keys)
    firsts, pids = db.leaf_key_map()
    mid = len(pids) // 2
    lo, hi = int(firsts[mid]), int(firsts[mid + 1])
    old_leaf = pids[mid]
    start_key = max(k for k in existing if lo <= k < hi)
    # Span to the end of the key space: max_pages=1 then genuinely
    # truncates, so the count is the entry count of the *first* span page
    # — the page the (possibly stale) map claims holds the start key.
    end_key = max(existing)
    gaps = [k for k in range(lo + 1, hi) if k not in existing]
    assert len(gaps) >= 4, "the probed leaf needs insertable gap keys"

    def inserter():
        yield env.timeout(500.0)
        before = db.index.page_splits
        for gap in gaps:
            if gap > start_key:
                continue
            db.insert(gap)
            if db.index.page_splits > before:
                break
        assert db.index.page_splits > before, "the inserts must split the leaf"
        # Keys above start_key land in the new sibling; keep inserting until
        # the two halves' entry counts provably differ, so the assertion
        # below cannot pass by reading the wrong page.
        uppers = iter(gap for gap in gaps if gap > start_key)
        sibling = db.index.page_path(start_key)[-1]
        while db._entries_in_leaf_page(sibling) == db._entries_in_leaf_page(old_leaf):
            db.insert(next(uppers))

    env.process(inserter())
    count = env.run(
        until=env.process(db.serve_scan(reader, start_key, end_key, max_pages=1))
    )
    new_leaf = db.index.page_path(start_key)[-1]
    assert new_leaf != old_leaf, "the split must have moved the start key"
    assert db._entries_in_leaf_page(new_leaf) != db._entries_in_leaf_page(old_leaf)
    assert count == db._entries_in_leaf_page(new_leaf)
    assert reader.pool.contains(new_leaf), "the scan must have read the new sibling"


# -- regression: batched waves vs the brownout cap (fails pre-fix) ------------


def test_batched_waves_respect_brownout_cap_under_chaos():
    """Chaos-limped disks breach the latency SLO; the brownout ladder caps
    outstanding prefetches; batched prefetch waves must honor the cap and
    count suppressions.  Pre-fix, waves bypassed the cap entirely and
    ``prefetches_suppressed`` stayed 0 at brownout level >= 1.
    """
    plan = ChaosSchedule.parse("limp disk=0 x4 @0; limp disk=1 x4 @0", seed=9).to_fault_plan()
    db = MiniDbms(num_rows=800, num_disks=2, page_size=512, seed=9, mature=False)
    server = DbmsServer(
        db, max_concurrency=8, queue_depth=128, pool_frames=16,
        admission_mode="batch", batch_max=16, batch_window_us=WINDOW_US,
        fault_plan=plan, policy=RetryPolicy(), seed=9,
    )
    controller = BrownoutController(server, BrownoutConfig(p99_slo_us=10_000.0))
    keys = [int(k) for k in db._workload.keys]

    def burst(offset: int, count: int = 24) -> None:
        for i in range(count):
            request = server.make_request(
                ("lookup", keys[(offset + 7 * i) % len(keys)]), session=f"s{i % 6}"
            )
            server.submit(request)
        server.run()

    burst(0)  # limped lookups populate the SLO window
    controller.evaluate_window()
    assert controller.level >= 1, "the chaos schedule must trip the ladder"
    assert server.reader.max_outstanding_prefetches == controller.config.prefetch_cap
    suppressed_before = int(server.reader.prefetches_suppressed)
    waves_before = int(server.reader.prefetch_waves)
    burst(400)  # fresh leaves: waves now run against the shrunken cap
    assert int(server.reader.prefetch_waves) > waves_before, "batches must still wave"
    assert int(server.reader.prefetches_suppressed) > suppressed_before, (
        "capped waves must count suppressed prefetches"
    )
    assert server.stats.conserved()


# -- linearizability and determinism ------------------------------------------


def test_batched_lookups_linearizable_across_root_split():
    """Batches straddling a *root* split (tree height grows mid-run) stay
    linearizable in page mode: 256-byte pages put the root a handful of
    splits from capacity, so a racing insert burst grows the tree while
    batches traverse it."""
    server = make_batch_server(
        seed=3, num_rows=200, page_size=256, concurrency="page",
        batch_max=8, history=True,
    )
    keys = existing_keys(server)
    height_before = server.db.index.height
    requests = []
    for i in range(60):
        if i % 2 == 0:
            request = server.make_request(("insert", None), session=f"s{i % 6}")
        else:
            request = server.make_request(
                ("lookup", keys[(13 * i) % len(keys)]), session=f"s{i % 6}"
            )
        requests.append(request)
        server.submit(request)
    server.run()
    assert server.db.index.height > height_before, "the root must have split"
    assert all(r.outcome == "ok" for r in requests)
    assert server.stats.batches >= 1
    assert server.stats.conserved()
    result = check_linearizable(server.history.history())
    assert result.ok, result.reason
    server.db.index.validate()


@settings(max_examples=5, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_batched_results_byte_identical_and_linearizable(seed):
    """Property (over substrate seeds): the same lookup mix — existing
    keys and never-inserted probes, racing fresh-key inserts — returns
    byte-identical per-request rows in batch and individual mode, and both
    histories are linearizable."""
    rows_by_mode = {}
    for mode in ("fifo", "batch"):
        server = make_batch_server(
            seed=seed % 100, admission_mode=mode, concurrency="page", history=True
        )
        keys = existing_keys(server)
        absent = [keys[-1] + 3, keys[0] - 7, keys[9] + 1]  # disjoint from fresh keys
        requests = []
        for i in range(24):
            if i % 4 == 3:
                request = server.make_request(("insert", None), session=f"s{i % 6}")
            elif i % 4 == 2:
                request = server.make_request(
                    ("lookup", absent[i % len(absent)]), session=f"s{i % 6}"
                )
            else:
                request = server.make_request(
                    ("lookup", keys[(seed + 11 * i) % len(keys)]), session=f"s{i % 6}"
                )
            requests.append(request)
            server.submit(request)
        server.run()
        assert server.stats.conserved()
        result = check_linearizable(server.history.history())
        assert result.ok, result.reason
        rows_by_mode[mode] = [
            (r.rid, r.rows) for r in requests if r.kind == "lookup" and r.outcome == "ok"
        ]
    assert rows_by_mode["batch"] == rows_by_mode["fifo"]


def open_loop_batch_run(seed: int = 11):
    server = make_batch_server(seed=seed, num_rows=800, queue_depth=64)
    gen = OpenLoopLoadGenerator(
        server, rate_ops_s=400, duration_s=0.5,
        mix=OpMix(lookup=0.9, scan=0.0, insert=0.1), seed=seed,
    )
    stats = gen.run()
    fingerprint = [
        (r.rid, r.outcome, r.rows, round(r.latency_us, 6)) for r in server.requests
    ]
    return stats.snapshot(), fingerprint


def test_batch_mode_two_runs_byte_identical():
    first = open_loop_batch_run()
    second = open_loop_batch_run()
    assert first[0] == second[0]
    assert first[1] == second[1]


def test_batch_mode_beats_individual_lookup_throughput():
    """Lookup-heavy overload with scarce tokens: batched admission must
    complete meaningfully more lookups per second (the bench asserts the
    full >= 1.5x criterion on the larger configuration)."""
    throughput = {}
    for mode in ("fifo", "batch"):
        server = make_batch_server(
            seed=11, num_rows=2000, page_size=1024, admission_mode=mode,
            max_concurrency=2, queue_depth=64, pool_frames=48, batch_max=32,
        )
        # Re-arm the wider batch window used by the bench race.
        server.batch_window_us = 8_000.0
        gen = OpenLoopLoadGenerator(
            server, rate_ops_s=1_600, duration_s=0.5,
            mix=OpMix(lookup=0.9, scan=0.0, insert=0.1), seed=11,
        )
        stats = gen.run()
        assert stats.conserved()
        lookups = stats.latency_histogram("lookup").count
        throughput[mode] = lookups / (server.env.now / 1e6)
        if mode == "batch":
            assert stats.batches > 0
    assert throughput["batch"] >= 1.25 * throughput["fifo"], throughput
