"""Tests for the micro-indexing B+-Tree."""

import numpy as np
import pytest

from repro.baselines import DiskBPlusTree, MicroIndexTree, MicroPageLayout
from repro.btree.context import TreeEnvironment
from repro.mem import MemorySystem

from index_contract import IndexContract, dense_keys


class TestMicroIndexContract(IndexContract):
    def make_index(self, **kwargs):
        kwargs.setdefault("page_size", 1024)
        kwargs.setdefault("buffer_pages", 512)
        return MicroIndexTree(TreeEnvironment(**kwargs))


class TestMicroPageLayout:
    def test_regions_do_not_overlap(self):
        for page_size in (1024, 4096, 8192, 16384, 32768):
            layout = MicroPageLayout.compute(page_size, key_size=4)
            assert layout.micro_offset == 64
            assert layout.key_offset >= layout.micro_offset + layout.num_subarrays * 4
            assert layout.ptr_offset >= layout.key_offset + layout.capacity * 4
            assert layout.ptr_offset + layout.capacity * 4 <= page_size

    def test_explicit_subarray_size(self):
        layout = MicroPageLayout.compute(16384, key_size=4, subarray_bytes=128)
        assert layout.subarray_keys == 32

    def test_key_array_line_aligned(self):
        layout = MicroPageLayout.compute(16384, key_size=4)
        assert layout.key_offset % 64 == 0

    def test_subarray_helpers(self):
        layout = MicroPageLayout.compute(4096, key_size=4, subarray_bytes=128)
        assert layout.subarray_of(0) == 0
        assert layout.subarray_of(32) == 1
        assert layout.used_subarrays(0) == 0
        assert layout.used_subarrays(1) == 1
        assert layout.used_subarrays(33) == 2


class TestMicroSearchBehaviour:
    def build(self, n=40000, page_size=16384):
        mem = MemorySystem()
        micro = MicroIndexTree(TreeEnvironment(page_size=page_size, mem=mem, buffer_pages=1024))
        plain = DiskBPlusTree(TreeEnvironment(page_size=page_size, mem=mem, buffer_pages=1024))
        keys = dense_keys(n)
        with mem.paused():
            micro.bulkload(keys, keys)
            plain.bulkload(keys, keys)
        return micro, plain, mem, keys

    def measure_search(self, tree, mem, keys, count=60, seed=1):
        rng = np.random.default_rng(seed)
        mem.clear_caches()
        with mem.measure() as phase:
            for key in rng.choice(keys, size=count):
                tree.search(int(key))
        return phase

    def test_search_faster_than_plain_btree(self):
        """The paper's headline search claim: micro-indexing beats the baseline."""
        micro, plain, mem, keys = self.build()
        micro_phase = self.measure_search(micro, mem, keys)
        plain_phase = self.measure_search(plain, mem, keys)
        assert micro_phase.total_cycles < plain_phase.total_cycles

    def test_search_uses_prefetches(self):
        micro, __, mem, keys = self.build(n=5000)
        phase = self.measure_search(micro, mem, keys, count=20)
        assert phase.prefetches_issued > 0
        assert phase.prefetch_covered > 0

    def test_insert_as_slow_as_plain_btree(self):
        """Micro-indexing keeps the big arrays, so updates stay expensive."""
        micro, plain, mem, keys = self.build(page_size=16384)
        rng = np.random.default_rng(5)
        picks = [int(k) + 1 for k in rng.choice(keys, size=40)]
        mem.clear_caches()
        with mem.measure() as micro_phase:
            for key in picks:
                micro.insert(key, 1)
        mem.clear_caches()
        with mem.measure() as plain_phase:
            for key in picks:
                plain.insert(key, 1)
        # Within 2x of the baseline (and certainly not an fp-like 10x win).
        assert micro_phase.total_cycles > 0.5 * plain_phase.total_cycles

    def test_same_results_as_plain_btree(self):
        micro, plain, mem, keys = self.build(n=5000)
        with mem.paused():
            for probe in range(0, 20000, 97):
                assert micro.search(probe) == plain.search(probe)
            lo, hi = keys[100], keys[4000]
            assert micro.range_scan(lo, hi) == plain.range_scan(lo, hi)

    def test_micro_pages_hold_more_entries_than_disk_pages(self):
        # Fewer total pages than the plain tree would be wrong: micro-index
        # area costs a little capacity, so page count is slightly higher.
        micro, plain, __, keys = self.build(n=40000)
        assert micro.num_pages >= plain.num_pages
        assert micro.num_pages <= plain.num_pages * 1.1
