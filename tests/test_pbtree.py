"""Tests for the prefetching B+-Tree (pB+-Tree) baseline."""

import numpy as np
import pytest

from repro.baselines import DiskBPlusTree, PrefetchingBPlusTree
from repro.btree.context import TreeEnvironment
from repro.mem import MemorySystem

from index_contract import IndexContract, dense_keys


class TestPBTreeContract(IndexContract):
    def make_index(self, **kwargs):
        return PrefetchingBPlusTree(**kwargs)

    def test_partial_fill_uses_more_pages(self):
        full = self.make_index()
        full.bulkload(dense_keys(self.N), dense_keys(self.N), fill=1.0)
        sparse = self.make_index()
        sparse.bulkload(dense_keys(self.N), dense_keys(self.N), fill=0.6)
        assert sparse.num_nodes > full.num_nodes

    def test_leaf_page_ids_nonempty_and_unique(self):
        # Memory-resident: consecutive leaves map to page regions; ids are
        # increasing but NOT unique (several nodes share a page region).
        index, __, __ = self.loaded()
        pids = index.leaf_page_ids()
        assert len(pids) > 1
        assert pids == sorted(pids)


class TestPBTreeGeometry:
    def test_default_width_is_eight_lines(self):
        tree = PrefetchingBPlusTree()
        assert tree.node_bytes == 8 * 64
        assert tree.capacity == (512 - 8) // 8

    def test_node_addresses_line_aligned(self):
        tree = PrefetchingBPlusTree()
        tree.bulkload(dense_keys(5000), dense_keys(5000))
        node = tree.first_leaf
        while node is not None:
            assert node.address % 64 == 0
            node = node.next_leaf

    def test_height_shallower_than_binary(self):
        tree = PrefetchingBPlusTree()
        n = 100_000
        tree.bulkload(dense_keys(n), dense_keys(n))
        assert tree.height <= 4  # 63-ary tree: 63^3 > 100k


class TestPBTreeCacheBehaviour:
    def build(self, n=200_000):
        mem = MemorySystem()
        tree = PrefetchingBPlusTree(mem=mem)
        keys = dense_keys(n)
        with mem.paused():
            tree.bulkload(keys, keys)
        return tree, mem, keys

    def test_node_fetch_is_pipelined(self):
        """One node costs ~T1 + (w-1)*Tnext, not w*T1."""
        tree, mem, keys = self.build(n=5000)
        mem.clear_caches()
        with mem.measure() as phase:
            tree.search(keys[123])
        w = tree.node_bytes // 64
        per_node_pipelined = 150 + (w - 1) * 10
        assert phase.dcache_stall_cycles < tree.height * per_node_pipelined * 1.25
        assert phase.dcache_stall_cycles < tree.height * w * 150 * 0.5

    def test_search_beats_disk_optimized_tree(self):
        """Reproduces the direction of Figure 3(b)."""
        n = 200_000
        mem = MemorySystem()
        pb = PrefetchingBPlusTree(mem=mem)
        disk = DiskBPlusTree(TreeEnvironment(page_size=8192, mem=mem, buffer_pages=2048))
        keys = dense_keys(n)
        with mem.paused():
            pb.bulkload(keys, keys)
            disk.bulkload(keys, keys)
        rng = np.random.default_rng(2)
        picks = [int(k) for k in rng.choice(keys, size=100)]
        mem.clear_caches()
        with mem.measure() as pb_phase:
            for key in picks:
                pb.search(key)
        mem.clear_caches()
        with mem.measure() as disk_phase:
            for key in picks:
                disk.search(key)
        assert pb_phase.total_cycles < disk_phase.total_cycles
        # Data-cache stalls are where the win comes from.
        assert pb_phase.dcache_stall_cycles < disk_phase.dcache_stall_cycles

    def test_leaves_span_many_pages(self):
        """The disk-hostility the paper motivates fpB+-Trees with."""
        tree, __, __ = self.build(n=200_000)
        pids = tree.leaf_page_ids()
        distinct_transitions = sum(1 for a, b in zip(pids, pids[1:]) if a != b)
        # A 16KB page holds 32 nodes; every ~32nd leaf crosses a page.
        assert distinct_transitions >= len(pids) // 40
