"""White-box tests for fpB+-Tree internals: placement, splits, space management."""

import numpy as np
import pytest

from repro.btree.context import TreeEnvironment
from repro.core.cache_first import PAGE_LEAF, PAGE_NONLEAF, PAGE_OVERFLOW, CacheFirstFpTree
from repro.core.disk_first import DiskFirstFpTree
from repro.core.inpage import LEAF, NONLEAF


def cf_tree(page_size=4096, hint=200_000, **kw):
    return CacheFirstFpTree(
        TreeEnvironment(page_size=page_size, buffer_pages=2048, **kw), num_keys_hint=hint
    )


def df_tree(page_size=4096, **kw):
    return DiskFirstFpTree(TreeEnvironment(page_size=page_size, buffer_pages=2048, **kw))


class TestCacheFirstPlacementInternals:
    def test_bitmap_spreads_colocated_children_evenly(self):
        """Section 3.2.1: underflow slots spread evenly over the children."""
        tree = cf_tree(page_size=16384)
        n = 200_000
        keys = list(range(10, 10 + 2 * n, 2))
        tree.bulkload(keys, [1] * n)
        root = tree.root
        colocated = [i for i, child in enumerate(root.children) if child.pid == root.pid]
        assert len(colocated) >= 2
        gaps = np.diff(colocated)
        # Even spreading: gaps differ by at most a factor of ~2.
        assert max(gaps) <= 2 * max(1, min(gaps)) + 1

    def test_in_page_levels_recorded(self):
        tree = cf_tree(page_size=16384)
        n = 200_000
        tree.bulkload(range(10, 10 + 2 * n, 2), [1] * n)
        root = tree.root
        assert root.in_page_level == 0
        for child in root.children:
            if child.pid == root.pid:
                assert child.in_page_level == 1

    def test_top_of_page_walk(self):
        tree = cf_tree(page_size=16384)
        n = 200_000
        tree.bulkload(range(10, 10 + 2 * n, 2), [1] * n)
        root = tree.root
        for child in root.children:
            if child.pid == root.pid and not child.is_leaf_parent:
                assert tree._top_of_page(child) is root
                break

    def test_overflow_pages_only_hold_leaf_parents(self):
        tree = cf_tree(page_size=4096, hint=100_000)
        n = 100_000
        tree.bulkload(range(10, 10 + 2 * n, 2), [1] * n)
        for pid in tree._overflow_pids:
            page = tree.store.page(pid)
            assert page.kind == PAGE_OVERFLOW
            for node in page.nodes():
                assert node.is_leaf_parent

    def test_first_leaf_of_page_identifies_chain_head(self):
        tree = cf_tree()
        n = 5000
        tree.bulkload(range(10, 10 + 2 * n, 2), [1] * n)
        for pid in tree.leaf_page_ids():
            page = tree.store.page(pid)
            first = tree._first_leaf_of_page(page)
            residents = page.nodes()
            assert first in residents
            assert all(int(first.keys[0]) <= int(n.keys[0]) for n in residents if n.count)

    def test_forced_page_splits_keep_parent_pointers_consistent(self):
        # A num_keys hint of 100K picks narrow nodes at 1KB pages, so the
        # non-leaf levels are deep enough that Figure 9(c) splits happen.
        tree = cf_tree(page_size=1024, hint=100_000)
        rng = np.random.default_rng(2)
        for key in rng.permutation(np.arange(1, 80_000, 2))[:30_000]:
            tree.insert(int(key), 1)
        assert tree.nonleaf_page_splits > 0
        tree.validate()  # checks parent refs, chains, contiguity, JPA

    def test_page_kinds_partition_the_store(self):
        tree = cf_tree(page_size=4096, hint=100_000)
        n = 100_000
        tree.bulkload(range(10, 10 + 2 * n, 2), [1] * n)
        kinds = {PAGE_LEAF: 0, PAGE_NONLEAF: 0, PAGE_OVERFLOW: 0}
        for pid in tree.store.page_ids():
            kinds[tree.store.page(pid).kind] += 1
        assert kinds[PAGE_LEAF] == len(tree.leaf_page_ids())
        assert kinds[PAGE_OVERFLOW] == tree.overflow_page_count()
        assert kinds[PAGE_NONLEAF] >= 1


class TestDiskFirstSpaceInternals:
    def test_inpage_tree_heights_bounded_by_optimizer(self):
        tree = df_tree(page_size=16384)
        n = 100_000
        tree.bulkload(range(10, 10 + 2 * n, 2), [1] * n)
        for pid in tree.leaf_page_ids():
            page = tree.store.page(pid)

            def depth(line, acc=1):
                node = page.nodes[line]
                if node.kind == LEAF:
                    return acc
                return max(depth(int(node.ptrs[i]), acc + 1) for i in range(node.count))

            assert depth(page.root_line) <= tree.layout.widths.levels + 1

    def test_line_allocator_consistent_after_heavy_churn(self):
        tree = df_tree(page_size=1024)
        rng = np.random.default_rng(3)
        live = set()
        for key in rng.permutation(np.arange(1, 30_000))[:8000]:
            key = int(key)
            tree.insert(key, 1)
            live.add(key)
        for key in list(live)[::3]:
            tree.delete(key)
        tree.validate()  # includes allocator/line cross-checks

    def test_offsets_fit_two_bytes(self):
        """In-page pointers are line numbers, representable in 2 bytes."""
        tree = df_tree(page_size=32768)
        n = 100_000
        tree.bulkload(range(10, 10 + 2 * n, 2), [1] * n)
        for pid in tree.store.page_ids():
            page = tree.store.page(pid)
            for node in page.nodes.values():
                if node.kind == NONLEAF:
                    assert all(0 < int(p) < 65536 for p in node.ptrs[: node.count])

    def test_page_totals_track_entry_counts(self):
        tree = df_tree()
        n = 4000
        tree.bulkload(range(10, 10 + 2 * n, 2), [1] * n, fill=0.8)
        for key in range(11, 4000, 7):
            tree.insert(key, 2)
        for key in range(10, 2000, 8):
            tree.delete(key)
        for pid in tree.leaf_page_ids():
            page = tree.store.page(pid)
            counted = sum(node.count for node in page.leaf_nodes_in_order())
            assert counted == page.total

    def test_reorganize_preserves_entries(self):
        tree = df_tree(page_size=4096)
        n = tree.layout.page_fanout // 2
        keys = list(range(10, 10 + 2 * n, 2))
        tree.bulkload(keys, [k + 1 for k in keys], fill=0.5)
        pid = tree.leaf_page_ids()[0]
        page = tree.store.page(pid)
        before = list(tree.items())
        tree._reorganize_page(pid, page, tree.pool.address_of(pid))
        assert list(tree.items()) == before
        tree.validate()

    def test_empty_page_rebuild_leaves_usable_root(self):
        tree = df_tree()
        keys = list(range(10, 400, 2))
        tree.bulkload(keys, keys)
        for key in keys:
            tree.delete(key)
        # Every page still has a routable (empty) in-page tree.
        for pid in tree.leaf_page_ids():
            page = tree.store.page(pid)
            assert page.root_line in page.nodes
        assert tree.search(10) is None
        tree.insert(10, 1)
        assert tree.search(10) == 1
