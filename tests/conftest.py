"""Test configuration: make helper modules in this directory importable."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
