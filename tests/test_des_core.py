"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.des import AllOf, AnyOf, Environment, SimulationError


def test_timeout_advances_clock():
    env = Environment()
    fired = []

    def proc():
        yield env.timeout(5)
        fired.append(env.now)
        yield env.timeout(2.5)
        fired.append(env.now)

    env.process(proc())
    env.run()
    assert fired == [5, 7.5]
    assert env.now == 7.5


def test_timeout_value_passthrough():
    env = Environment()
    seen = []

    def proc():
        value = yield env.timeout(1, value="payload")
        seen.append(value)

    env.process(proc())
    env.run()
    assert seen == ["payload"]


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_process_return_value_visible_to_waiter():
    env = Environment()
    results = []

    def worker():
        yield env.timeout(3)
        return 42

    def waiter():
        value = yield env.process(worker())
        results.append((env.now, value))

    env.process(waiter())
    env.run()
    assert results == [(3, 42)]


def test_event_succeed_wakes_waiter():
    env = Environment()
    gate = env.event()
    log = []

    def opener():
        yield env.timeout(10)
        gate.succeed("open")

    def waiter():
        value = yield gate
        log.append((env.now, value))

    env.process(opener())
    env.process(waiter())
    env.run()
    assert log == [(10, "open")]


def test_event_fail_raises_in_waiter():
    env = Environment()
    gate = env.event()
    caught = []

    def failer():
        yield env.timeout(1)
        gate.fail(RuntimeError("boom"))

    def waiter():
        try:
            yield gate
        except RuntimeError as exc:
            caught.append(str(exc))

    env.process(failer())
    env.process(waiter())
    env.run()
    assert caught == ["boom"]


def test_double_trigger_rejected():
    env = Environment()
    event = env.event()
    event.succeed()
    with pytest.raises(SimulationError):
        event.succeed()


def test_unhandled_process_failure_propagates():
    env = Environment()

    def bad():
        yield env.timeout(1)
        raise ValueError("unhandled")

    env.process(bad())
    with pytest.raises(ValueError, match="unhandled"):
        env.run()


def test_run_until_time_stops_clock_exactly():
    env = Environment()
    ticks = []

    def ticker():
        while True:
            yield env.timeout(1)
            ticks.append(env.now)

    env.process(ticker())
    env.run(until=4.5)
    assert ticks == [1, 2, 3, 4]
    assert env.now == 4.5


def test_run_until_event_returns_value():
    env = Environment()

    def worker():
        yield env.timeout(7)
        return "done"

    result = env.run(until=env.process(worker()))
    assert result == "done"
    assert env.now == 7


def test_run_until_event_never_fires_raises():
    env = Environment()
    orphan = env.event()

    def proc():
        yield env.timeout(1)

    env.process(proc())
    with pytest.raises(SimulationError):
        env.run(until=orphan)


def test_all_of_waits_for_slowest():
    env = Environment()
    at = []

    def proc():
        yield AllOf(env, [env.timeout(3), env.timeout(9), env.timeout(6)])
        at.append(env.now)

    env.process(proc())
    env.run()
    assert at == [9]


def test_any_of_fires_on_fastest():
    env = Environment()
    at = []

    def proc():
        yield AnyOf(env, [env.timeout(3), env.timeout(9)])
        at.append(env.now)

    env.process(proc())
    env.run()
    assert at == [3]


def test_all_of_empty_fires_immediately():
    env = Environment()
    at = []

    def proc():
        yield AllOf(env, [])
        at.append(env.now)

    env.process(proc())
    env.run()
    assert at == [0]


def test_fifo_ordering_of_simultaneous_events():
    env = Environment()
    order = []

    def proc(name):
        yield env.timeout(5)
        order.append(name)

    env.process(proc("first"))
    env.process(proc("second"))
    env.process(proc("third"))
    env.run()
    assert order == ["first", "second", "third"]


def test_yield_already_processed_event_resumes():
    env = Environment()
    done = env.event()
    done.succeed("early")
    seen = []

    def proc():
        yield env.timeout(2)
        value = yield done  # already processed by now
        seen.append((env.now, value))

    env.process(proc())
    env.run()
    assert seen == [(2, "early")]


def test_yield_non_event_is_an_error():
    env = Environment()

    def bad():
        yield 5

    env.process(bad())
    with pytest.raises(SimulationError):
        env.run()


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(4)
    env.timeout(2)
    assert env.peek() == 2
    env.run()
    assert env.peek() == float("inf")


def test_nested_processes_compose():
    env = Environment()

    def inner(duration):
        yield env.timeout(duration)
        return duration * 2

    def outer():
        first = yield env.process(inner(2))
        second = yield env.process(inner(3))
        return first + second

    result = env.run(until=env.process(outer()))
    assert result == 10
    assert env.now == 5
