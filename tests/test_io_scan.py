"""Tests for the timed range-scan I/O simulation (Figure 18 machinery)."""

import pytest

from repro.bench.io_scan import timed_range_scan
from repro.btree.context import TreeEnvironment
from repro.core import DiskFirstFpTree
from repro.workloads import KeyWorkload, build_mature_tree


@pytest.fixture(scope="module")
def mature_tree():
    tree = DiskFirstFpTree(TreeEnvironment(page_size=4096, buffer_pages=4096))
    workload = KeyWorkload(40_000, seed=11)
    build_mature_tree(tree, workload, bulk_fraction=0.9)
    return tree, workload


def scan_pids(tree, count=60):
    pids = tree.leaf_page_ids()
    return pids[:count], pids[count : count + 32]


def test_prefetch_beats_plain_scan_on_many_disks(mature_tree):
    tree, __ = mature_tree
    pids, extra = scan_pids(tree)
    plain = timed_range_scan(tree.store, pids, num_disks=10, use_prefetch=False)
    fetched = timed_range_scan(tree.store, pids, num_disks=10, use_prefetch=True)
    assert fetched.elapsed_us < plain.elapsed_us
    # Mature-tree leaves are scattered, so the win should be large (>2x).
    assert plain.elapsed_us / fetched.elapsed_us > 2.0


def test_single_disk_gives_little_benefit(mature_tree):
    tree, __ = mature_tree
    pids, __ = scan_pids(tree)
    plain = timed_range_scan(tree.store, pids, num_disks=1, use_prefetch=False)
    fetched = timed_range_scan(tree.store, pids, num_disks=1, use_prefetch=True)
    assert fetched.elapsed_us <= plain.elapsed_us
    assert plain.elapsed_us / fetched.elapsed_us < 2.0


def test_speedup_grows_with_disks(mature_tree):
    tree, __ = mature_tree
    pids, __ = scan_pids(tree)
    speedups = []
    for disks in (1, 4, 10):
        plain = timed_range_scan(tree.store, pids, num_disks=disks, use_prefetch=False)
        fetched = timed_range_scan(
            tree.store, pids, num_disks=disks, use_prefetch=True, prefetch_depth=2 * disks
        )
        speedups.append(plain.elapsed_us / fetched.elapsed_us)
    assert speedups[0] < speedups[1] < speedups[2]


def test_overshoot_costs_extra_reads(mature_tree):
    tree, __ = mature_tree
    pids, extra = scan_pids(tree, count=20)
    careful = timed_range_scan(
        tree.store, pids, extra_pids=extra, num_disks=4, use_prefetch=True, avoid_overshoot=True
    )
    sloppy = timed_range_scan(
        tree.store, pids, extra_pids=extra, num_disks=4, use_prefetch=True, avoid_overshoot=False
    )
    assert careful.overshoot_reads == 0
    assert sloppy.overshoot_reads > 0
    assert sloppy.disk_reads > careful.disk_reads


def test_search_paths_are_read(mature_tree):
    tree, workload = mature_tree
    key = int(workload.keys[1000])
    path = tree.page_path(key)
    pids, __ = scan_pids(tree, count=5)
    timing = timed_range_scan(tree.store, pids, start_path=path, num_disks=2, use_prefetch=False)
    assert timing.disk_reads >= len(pids) + len(path) - 1  # root may repeat


def test_empty_range():
    tree = DiskFirstFpTree(TreeEnvironment(page_size=4096, buffer_pages=64))
    tree.bulkload(range(10, 5000, 3), range(10, 5000, 3))
    timing = timed_range_scan(tree.store, [], num_disks=2, use_prefetch=True)
    assert timing.elapsed_us == 0
    assert timing.disk_reads == 0
