"""Tests for the node-width optimizer (paper Section 3.1.1 / Table 2)."""

import pytest

from repro.core.optimizer import (
    CACHE_FIRST_NODE_HEADER_BYTES,
    PAGE_HEADER_BYTES,
    micro_page_capacity,
    optimal_pbtree_width,
    optimize_cache_first,
    optimize_disk_first,
    optimize_micro_index,
    search_cost,
)


class TestSearchCost:
    def test_single_level(self):
        assert search_cost(1, 3, 8, t1=150, tnext=10) == 150 + 7 * 10

    def test_multi_level(self):
        # (L-1) non-leaf fetches + one leaf fetch.
        assert search_cost(3, 3, 8, 150, 10) == 2 * (150 + 20) + (150 + 70)

    def test_invalid_levels(self):
        with pytest.raises(ValueError):
            search_cost(0, 1, 1, 150, 10)


class TestDiskFirstTable2:
    """Paper Table 2, disk-first columns (4-byte keys, T1=150, Tnext=10)."""

    def test_4kb(self):
        r = optimize_disk_first(4096)
        assert (r.nonleaf_bytes, r.leaf_bytes, r.page_fanout) == (64, 384, 470)
        assert r.cost_ratio == pytest.approx(1.06, abs=0.005)

    def test_8kb(self):
        r = optimize_disk_first(8192)
        assert (r.nonleaf_bytes, r.leaf_bytes, r.page_fanout) == (192, 256, 961)
        assert r.cost_ratio == pytest.approx(1.00, abs=0.005)

    def test_16kb(self):
        # Paper reports (192, 512) with fan-out 1953; our space accounting
        # finds the slightly tighter (192, 576) packing with fan-out 1988.
        # Same non-leaf width, fan-out within 2%, ratio within the window.
        r = optimize_disk_first(16384)
        assert r.nonleaf_bytes == 192
        assert abs(r.page_fanout - 1953) / 1953 < 0.02
        assert r.cost_ratio <= 1.10

    def test_32kb(self):
        r = optimize_disk_first(32768)
        assert (r.nonleaf_bytes, r.leaf_bytes, r.page_fanout) == (256, 832, 4017)
        assert r.cost_ratio == pytest.approx(1.07, abs=0.005)

    def test_structure_fits_in_page(self):
        for page_size in (4096, 8192, 16384, 32768):
            r = optimize_disk_first(page_size)
            nonleaf_nodes = 0
            nodes = r.leaf_nodes
            for __ in range(r.levels - 1):
                nodes = -(-nodes // r.nonleaf_capacity)
                nonleaf_nodes += nodes
            assert nodes == 1  # a single in-page root
            used = r.leaf_nodes * r.leaf_bytes + nonleaf_nodes * r.nonleaf_bytes
            assert used + PAGE_HEADER_BYTES <= page_size

    def test_cost_window_respected(self):
        for page_size in (4096, 8192, 16384, 32768):
            assert optimize_disk_first(page_size).cost_ratio <= 1.10 + 1e-9

    def test_key8_produces_valid_widths(self):
        r = optimize_disk_first(16384, key_size=8)
        assert r.page_fanout > 0
        assert r.nonleaf_capacity >= 2


class TestCacheFirstTable2:
    """Paper Table 2, cache-first columns."""

    def test_4kb(self):
        r = optimize_cache_first(4096)
        assert (r.node_bytes, r.page_fanout) == (576, 497)

    def test_8kb(self):
        r = optimize_cache_first(8192)
        assert (r.node_bytes, r.page_fanout) == (576, 994)

    def test_32kb(self):
        r = optimize_cache_first(32768)
        assert (r.node_bytes, r.page_fanout) == (640, 4029)

    def test_16kb_close_to_paper(self):
        # Paper: 704B nodes, fan-out 2001.  Our level model picks 320B
        # (fan-out 1989) — within 1% fan-out and the same cost window.
        r = optimize_cache_first(16384)
        assert abs(r.page_fanout - 2001) / 2001 < 0.01
        assert r.cost_ratio <= 1.10

    def test_nonleaf_fanout_matches_paper_example(self):
        # Section 4.3.1: with 4KB pages the fan-out of a non-leaf node is 57.
        r = optimize_cache_first(4096)
        assert r.nonleaf_capacity == 57

    def test_bulkload_example_numbers(self):
        # Section 3.2.2's example: 69 children per full node, 23 nodes/page.
        r = optimize_cache_first(16384)
        node_bytes = 704
        nonleaf = (node_bytes - CACHE_FIRST_NODE_HEADER_BYTES) // 10
        nodes_per_page = (16384 - PAGE_HEADER_BYTES) // node_bytes
        assert nonleaf == 69
        assert nodes_per_page == 23


class TestMicroIndexTable2:
    def test_fanouts_close_to_paper(self):
        paper = {4096: (128, 496), 8192: (192, 1008), 16384: (320, 2032), 32768: (320, 4064)}
        for page_size, (__, fanout) in paper.items():
            r = optimize_micro_index(page_size)
            assert abs(r.page_fanout - fanout) / fanout < 0.02, page_size
            assert r.cost_ratio <= 1.10

    def test_capacity_layout_fits(self):
        for page_size in (4096, 8192, 16384, 32768):
            for s in (64, 128, 256, 512):
                shape = micro_page_capacity(page_size, s)
                total = (
                    PAGE_HEADER_BYTES
                    + shape.micro_bytes
                    + -(-shape.capacity * 4 // 64) * 64
                    + shape.capacity * 4
                )
                assert total <= page_size

    def test_subarray_too_small_rejected(self):
        with pytest.raises(ValueError):
            micro_page_capacity(4096, 2)


class TestPBTreeWidth:
    def test_default_selects_eight_lines(self):
        # Matches the prefetching-B+-Tree paper's optimum for these params.
        assert optimal_pbtree_width() == 8

    def test_slower_memory_prefers_wider_nodes(self):
        wide = optimal_pbtree_width(tnext=1)
        assert wide >= optimal_pbtree_width(tnext=10)
