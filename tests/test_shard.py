"""Tests for the shard router: routing, scatter–gather, conservation."""

import numpy as np
import pytest

from repro.dbms.engine import MiniDbms
from repro.des import WaitTimeout
from repro.serve import DbmsServer, OpenLoopLoadGenerator
from repro.shard import BoundaryPlanner, ShardRouter, build_fleet
from repro.workloads import KeyWorkload, OpMix

NUM_ROWS = 1_200


def make_fleet(shard_count=4, num_rows=NUM_ROWS, placement="equal_width", **kwargs):
    universe = KeyWorkload(num_rows, seed=7)
    planner = BoundaryPlanner(universe.keys, shard_count)
    if placement == "equal_width":
        plan = planner.equal_width()
    else:
        from repro.workloads import sample_ops

        sample = sample_ops(universe.keys.size, OpMix(), distribution="zipf", seed=3)
        plan = planner.optimized(sample)
    kwargs.setdefault("num_disks", 4)
    router = build_fleet(num_rows, plan, **kwargs)
    return router, plan, universe


def unsharded_server(num_rows=NUM_ROWS):
    db = MiniDbms(num_rows=num_rows, num_disks=4, page_size=4096, seed=7, mature=False)
    return DbmsServer(db, seed=0)


def run_ops(target, ops):
    """Submit ops against a router or server, drain, return the requests."""
    requests = [target.make_request(op) for op in ops]
    for request in requests:
        target.submit(request)
    target.run()
    return requests


# -- construction and the sliced databases ----------------------------------


def test_fleet_reassembles_the_full_key_universe():
    router, plan, universe = make_fleet()
    assert np.array_equal(router.workload_keys, universe.keys)
    for shard, (lo, hi) in zip(router.shards, plan.key_ranges()):
        keys = shard.db.stored_keys
        assert keys.size > 0
        if lo is not None:
            assert keys[0] >= lo
        if hi is not None:
            assert keys[-1] < hi


def test_sliced_database_rejects_mature_and_empty_ranges():
    with pytest.raises(ValueError, match="mature"):
        MiniDbms(num_rows=200, mature=True, key_range=(None, 100))
    with pytest.raises(ValueError, match="no stored keys"):
        MiniDbms(num_rows=200, mature=False, key_range=(0, 5))


def test_shard_rows_match_the_unsharded_database():
    # Row payloads are a pure function of the key, so a shard stores
    # byte-identical rows to the unsharded database for its key range.
    whole = MiniDbms(num_rows=300, num_disks=4, page_size=4096, seed=7, mature=False)
    universe = KeyWorkload(300, seed=7)
    cut = int(universe.keys[150])
    part = MiniDbms(
        num_rows=300, num_disks=4, page_size=4096, seed=7, mature=False,
        key_range=(cut, None),
    )
    whole_rows = {k1: (k1, k2, k3) for __, k1, k2, k3 in whole.table.rows()}
    part_rows = list(part.table.rows())
    assert part_rows  # the slice is non-empty
    for __, k1, k2, k3 in part_rows:
        assert (k1, k2, k3) == whole_rows[k1]
        assert k1 >= cut


def test_router_validates_its_shards():
    router, plan, __ = make_fleet(shard_count=4)
    with pytest.raises(ValueError, match="4 shards"):
        ShardRouter(router.shards[:2], plan, router.env)
    foreign = unsharded_server()
    two = BoundaryPlanner(KeyWorkload(NUM_ROWS, seed=7).keys, 1).equal_width()
    with pytest.raises(ValueError, match="not bound"):
        ShardRouter([foreign], two, router.env)


def test_shard_attached_server_cannot_rebuild_substrate():
    router, __, __ = make_fleet(shard_count=2)
    with pytest.raises(RuntimeError, match="shares the fleet's DES clock"):
        router.shards[0].rebuild_substrate()


# -- point routing ----------------------------------------------------------


def test_lookups_route_to_the_owning_shard():
    router, plan, universe = make_fleet()
    probe_keys = [int(universe.keys[i]) for i in (0, 211, 600, 977, -1)]
    requests = run_ops(router, [("lookup", key) for key in probe_keys])
    for request, key in zip(requests, probe_keys):
        # Only the owning shard stores the key: a hit proves the route.
        assert request.outcome == "ok" and request.rows == 1, (key, request)
    for shard_id, shard in enumerate(router.shards):
        expected = sum(1 for key in probe_keys if plan.shard_for_key(key) == shard_id)
        assert shard.stats.issued == expected
    router.check_conservation()


def test_missing_key_lookup_completes_with_zero_rows():
    router, __, universe = make_fleet()
    absent = int(universe.keys[0]) - 1
    (request,) = run_ops(router, [("lookup", absent)])
    assert request.outcome == "ok" and request.rows == 0


def test_keyless_inserts_round_robin_and_stay_in_range():
    router, plan, __ = make_fleet(shard_count=4)
    requests = run_ops(router, [("insert", None)] * 8)
    assert router.rr_inserts == 8
    for request in requests:
        assert request.outcome == "ok"
        assert request.op[1] is not None  # materialized key propagated back
    for shard_id, shard in enumerate(router.shards):
        assert shard.stats.issued == 2  # 8 inserts round-robin over 4 shards
        lo, hi = plan.key_ranges()[shard_id]
        for key in shard.fresh_keys.minted:
            assert plan.shard_for_key(key) == shard_id
            assert (lo is None or key >= lo) and (hi is None or key < hi)


def test_routed_inserts_never_land_on_the_wrong_shard():
    # The regression the range allocator exists for: run a whole mixed
    # workload, then audit every minted key against the plan.
    router, plan, __ = make_fleet(shard_count=4, placement="optimized")
    generator = OpenLoopLoadGenerator(
        router, rate_ops_s=600, duration_s=0.4,
        mix=OpMix(lookup=0.2, scan=0.1, insert=0.7), seed=5,
    )
    generator.run()
    router.check_conservation()
    minted_total = 0
    for shard_id, shard in enumerate(router.shards):
        for key in shard.fresh_keys.minted:
            assert plan.shard_for_key(key) == shard_id, (key, shard_id)
        minted_total += len(shard.fresh_keys.minted)
    assert minted_total > 0


# -- scatter–gather ---------------------------------------------------------


def test_single_shard_scan_takes_the_fast_path():
    router, plan, universe = make_fleet()
    lo, hi = plan.cut_positions[0], plan.cut_positions[1]
    start = int(universe.keys[lo + 2])
    end = int(universe.keys[hi - 2])  # strictly inside shard 1
    (request,) = run_ops(router, [("scan", start, end)])
    assert request.outcome == "ok"
    assert router.scan_fragments == 1
    assert router.single_shard_scans == 1
    assert router.cross_shard_scans == 0


def test_scan_straddling_three_boundaries_fragments_once_per_shard():
    router, plan, universe = make_fleet(shard_count=4)
    start = int(universe.keys[5])
    end = int(universe.keys[-5])  # covers all four shards
    (request,) = run_ops(router, [("scan", start, end)])
    assert request.outcome == "ok"
    assert router.scan_fragments == 4
    assert router.cross_shard_scans == 1 and router.single_shard_scans == 0
    # Every shard executed exactly its fragment.
    assert [shard.stats.issued for shard in router.shards] == [1, 1, 1, 1]
    router.check_conservation()


def test_cross_shard_scan_counts_match_the_unsharded_scan():
    universe = KeyWorkload(NUM_ROWS, seed=7)
    spans = [
        (int(universe.keys[5]), int(universe.keys[400])),    # 2 shards
        (int(universe.keys[5]), int(universe.keys[-5])),     # 4 shards
        (int(universe.keys[700]), int(universe.keys[750])),  # in-shard
    ]
    ops = [("scan", a, b) for a, b in spans]
    router, __, __ = make_fleet(shard_count=4, page_size=4096)
    sharded = run_ops(router, ops)
    plain = run_ops(unsharded_server(), ops)
    for fleet_req, plain_req in zip(sharded, plain):
        assert fleet_req.outcome == plain_req.outcome == "ok"
        # The ordered merge reassembles exactly the rows one server returns.
        assert fleet_req.rows == plain_req.rows > 0


def test_fragment_timeout_propagates_the_residual_deadline():
    # Routing burns route_cpu_us and each extra fragment fan_out_us, so a
    # fragment dispatched at elapsed e gets budget D - e and every
    # fragment's timeout lands at exactly issue + D.
    router, __, universe = make_fleet(
        shard_count=4, deadline_us=300.0, route_cpu_us=20.0, fan_out_us=25.0
    )
    start, end = int(universe.keys[5]), int(universe.keys[-5])
    (request,) = run_ops(router, [("scan", start, end)])
    assert request.outcome == "failed"
    assert request.finished_at - request.issued_at == pytest.approx(300.0)
    assert router.fragment_timeouts == 4  # no fragment finishes in 300 us
    # The abandoned fragments still completed server-side on their shards.
    assert sum(shard.stats.completed for shard in router.shards) == 4
    router.check_conservation()
    assert router.stats.failed == 1 and router.stats.in_flight == 0


def test_forwarded_lookup_times_out_at_the_residual_deadline():
    router, __, universe = make_fleet(shard_count=2, deadline_us=100.0)
    (request,) = run_ops(router, [("lookup", int(universe.keys[10]))])
    assert request.outcome == "failed"
    assert request.finished_at - request.issued_at == pytest.approx(100.0)
    assert isinstance(request.error, WaitTimeout)
    assert router.fragment_timeouts == 1
    router.check_conservation()
    assert router.stats.failed == 1 and router.stats.in_flight == 0


def test_partial_fragment_failure_fails_the_scan_but_keeps_accounting():
    # Saturate one shard's admission queue so its fragment sheds while the
    # others complete: the scan fails, nothing is lost or double-counted.
    router, plan, universe = make_fleet(
        shard_count=2, max_concurrency=1, queue_depth=1
    )
    hot = [
        ("lookup", int(universe.keys[5])),
        ("lookup", int(universe.keys[6])),
        ("lookup", int(universe.keys[7])),
        ("lookup", int(universe.keys[8])),
    ]  # all land on shard 0: fill its token + queue, force sheds
    scan = ("scan", int(universe.keys[5]), int(universe.keys[-5]))
    requests = run_ops(router, hot + [scan])
    scan_req = requests[-1]
    sheds = sum(1 for r in requests if r.outcome == "shed")
    assert sheds > 0  # the overload really happened
    if scan_req.outcome == "failed":
        assert router.fragment_failures > 0
    router.check_conservation()
    fleet = router.fleet_stats()
    assert fleet.conserved() and fleet.in_flight == 0


# -- fleet-wide accounting and determinism ----------------------------------


def test_fleet_conservation_holds_mid_run_with_requests_in_flight():
    router, __, __ = make_fleet(shard_count=4)
    generator = OpenLoopLoadGenerator(
        router, rate_ops_s=1500, duration_s=0.4, mix=OpMix(), seed=5,
    )
    generator.start()
    router.run(until=200_000.0)  # freeze mid-traffic
    router.check_conservation()
    assert router.fleet_stats().in_flight > 0
    router.run()  # drain
    router.check_conservation()
    fleet = router.fleet_stats()
    assert fleet.in_flight == 0
    assert fleet.issued == router.stats.issued + sum(
        s.stats.issued for s in router.shards
    )


def test_batch_admission_mode_passes_through_to_shards():
    router, __, __ = make_fleet(shard_count=2, admission_mode="batch")
    generator = OpenLoopLoadGenerator(
        router, rate_ops_s=1200, duration_s=0.3,
        mix=OpMix(lookup=1.0, scan=0.0, insert=0.0), seed=5,
    )
    generator.run()
    router.check_conservation()
    assert sum(shard.stats.batches for shard in router.shards) > 0
    assert sum(shard.stats.batched_ops for shard in router.shards) > 0


def test_same_seed_fleets_are_byte_identical():
    def one_run():
        router, __, __ = make_fleet(shard_count=4, placement="optimized")
        generator = OpenLoopLoadGenerator(
            router, rate_ops_s=900, duration_s=0.3, mix=OpMix(), seed=5,
            distribution="zipf",
        )
        generator.run()
        return (
            router.fleet_stats().snapshot(),
            router.scan_fragments,
            router.cross_shard_scans,
            [shard.fresh_keys.minted for shard in router.shards],
        )

    assert one_run() == one_run()
