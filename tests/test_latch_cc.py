"""Unit tests for page-level concurrency control (:mod:`repro.btree.cc`).

Covers the version-latch protocol (optimistic reads, FIFO write hand-off,
wraparound), the DES deadlock watchdog, and the latch edge cases the issue
names: a root split under a reader's optimistic snapshot of the old root,
writer retry-budget exhaustion, and version-counter wraparound.
"""

from __future__ import annotations

import pytest

from repro.btree.cc import (
    GLOBAL_LATCH,
    ConcurrentTreeOps,
    LatchDeadlockError,
    PageLatchManager,
)
from repro.dbms.engine import MiniDbms
from repro.des import Environment, Event, SimulationError
from repro.serve.server import DbmsServer


def make_manager(wrap: int = 1 << 32) -> tuple[Environment, PageLatchManager]:
    env = Environment()
    manager = PageLatchManager(env, wrap=wrap)
    manager.attach_watchdog()
    return env, manager


# -- the latch protocol ------------------------------------------------------


def test_write_latch_mutual_exclusion_is_fifo():
    env, m = make_manager()
    order = []

    def writer(tag, hold_us):
        yield from m.write_acquire(7, tag)
        order.append((tag, "in", env.now))
        yield env.timeout(hold_us)
        m.write_release(7, tag)

    for tag, hold in (("a", 10), ("b", 5), ("c", 1)):
        env.process(writer(tag, hold))
    env.run()
    # Strict FIFO: despite shorter holds, b and c wait their turn.
    assert [tag for tag, phase, _ in order] == ["a", "b", "c"]
    assert not m.locked(7)
    assert m.counters()["write_waits"] == 2


def test_version_is_odd_while_held_and_bumps_on_release():
    env, m = make_manager()
    observed = {}

    def writer():
        pre = yield from m.write_acquire(3, "w")
        observed["pre"] = pre
        observed["held_version"] = m.version(3)
        m.write_release(3, "w")
        observed["post"] = m.version(3)

    env.process(writer())
    env.run()
    assert observed["pre"] == 0
    assert observed["held_version"] == 1  # odd while held
    assert observed["post"] == 2  # even and advanced after release


def test_reader_waits_out_writer_then_validates():
    env, m = make_manager()
    trace = {}

    def writer():
        yield from m.write_acquire(1, "w")
        yield env.timeout(100)
        m.write_release(1, "w")

    def reader():
        yield env.timeout(10)  # arrive while the writer holds the latch
        version = yield from m.read_begin(1, "r")
        trace["begin_at"] = env.now
        trace["validates"] = m.validate(1, version)

    env.process(writer())
    env.process(reader())
    env.run()
    assert trace["begin_at"] == pytest.approx(100.0)  # parked until release
    assert trace["validates"] is True
    assert m.counters()["read_waits"] == 1


def test_validation_fails_after_interleaved_write():
    env, m = make_manager()
    outcome = {}

    def reader():
        version = yield from m.read_begin(2, "r")
        yield env.timeout(50)  # a writer sneaks in during this wait
        outcome["valid"] = m.validate(2, version)

    def writer():
        yield env.timeout(10)
        yield from m.write_acquire(2, "w")
        m.write_release(2, "w")

    env.process(reader())
    env.process(writer())
    env.run()
    assert outcome["valid"] is False
    assert m.counters()["validation_failures"] == 1


def test_bump_invalidates_optimistic_snapshots_without_latching():
    env, m = make_manager()
    version = m.version(9)
    m.bump(9)
    assert not m.locked(9)
    assert m.validate(9, version) is False


def test_version_counter_wraparound_preserves_parity():
    env, m = make_manager(wrap=8)
    releases = []

    def writer(i):
        # Staggered starts: no contention, so each release leaves the latch
        # free (a contended release hands off directly and leaves it odd).
        yield env.timeout(i * 10)
        yield from m.write_acquire(0, f"w{i}")
        yield env.timeout(1)
        m.write_release(0, f"w{i}")
        releases.append(m.version(0))

    for i in range(6):  # 6 releases at +2 each wraps an 8-cycle counter
        env.process(writer(i))
    env.run()
    assert releases == [2, 4, 6, 0, 2, 4]  # wrapped, still even
    assert not m.locked(0)
    # A snapshot from before the wrap that collides numerically would be
    # the ABA case; the production wrap (2**32) makes it unreachable, and
    # parity preservation keeps the protocol itself sound across the wrap.
    version = m.version(0)
    m.bump(0)
    assert m.validate(0, version) is False


def test_release_of_unheld_latch_raises():
    env, m = make_manager()
    with pytest.raises(SimulationError, match="unheld"):
        m.write_release(4, "nobody")


def test_wrap_must_be_even():
    env = Environment()
    with pytest.raises(ValueError):
        PageLatchManager(env, wrap=7)


# -- the deadlock watchdog ---------------------------------------------------


def test_watchdog_names_holder_and_waiters_on_drain():
    env, m = make_manager()

    def hog():
        yield from m.write_acquire(5, "session-a#1")
        yield env.timeout(1)
        # leaks the latch: never releases

    def victim():
        yield env.timeout(0.5)
        yield from m.write_acquire(5, "session-b#2")

    env.process(hog())
    env.process(victim())
    with pytest.raises(LatchDeadlockError) as excinfo:
        env.run()
    message = str(excinfo.value)
    assert "page 5" in message
    assert "session-a#1" in message  # the holder
    assert "session-b#2" in message  # the parked waiter
    assert excinfo.value.held == {5: "session-a#1"}
    assert excinfo.value.parked == [(5, "session-b#2", "write")]


def test_watchdog_fires_on_run_until_event_drain():
    env, m = make_manager()

    def hog():
        yield from m.write_acquire(1, "hog")
        yield env.timeout(1)

    def victim():
        yield env.timeout(0.5)
        yield from m.write_acquire(1, "victim")
        m.write_release(1, "victim")

    env.process(hog())
    stuck = env.process(victim())
    with pytest.raises(LatchDeadlockError):
        env.run(until=stuck)


def test_watchdog_silent_when_all_latches_released():
    env, m = make_manager()

    def worker():
        yield from m.write_acquire(1, "w")
        yield env.timeout(1)
        m.write_release(1, "w")

    env.process(worker())
    env.run()  # no exception: clean drain


# -- concurrent tree ops edge cases -----------------------------------------


def serve_db(**kwargs) -> tuple[MiniDbms, DbmsServer]:
    defaults = dict(num_rows=300, num_disks=2, page_size=512, seed=3, mature=False)
    defaults.update({k: v for k, v in kwargs.items() if k in defaults})
    db = MiniDbms(**defaults)
    server = DbmsServer(
        db,
        max_concurrency=kwargs.get("max_concurrency", 8),
        queue_depth=128,
        pool_frames=32,
        page_process_us=50.0,
        seed=defaults["seed"],
        concurrency=kwargs.get("concurrency", "page"),
        retry_budget=kwargs.get("retry_budget", 8),
    )
    return db, server


def test_root_split_under_optimistic_snapshot_of_old_root():
    """A reader snapshots the root version, a writer splits the root: the
    stale snapshot must fail validation, and a descent started after the
    split must route through the new root and still find its key."""
    db, server = serve_db()
    ops = server.cc_ops
    latches = server.latches
    tree = db.index
    env = server.env
    old_root = tree.root_pid
    old_version = latches.version(old_root)
    root_split = Event(env)

    result = {}

    def writer():
        # Drive inserts through the real concurrent path until the root
        # splits (the tree grows a level).
        height = tree.height
        key = int(db._workload.keys[-1])
        while tree.height == height:
            key += 2
            yield from ops.insert(server.reader, server.disks, key, owner="writer")
        root_split.succeed()

    def reader():
        yield root_split
        assert tree.root_pid != old_root
        # The pre-split snapshot of the old root is stale: the split
        # rewrote that page, so optimistic validation must fail.
        assert latches.validate(old_root, old_version) is False
        key = int(db._workload.keys[0])
        row = yield from ops.lookup(server.reader, key, owner="reader")
        result["row"] = row

    env.process(writer())
    env.process(reader())
    env.run()
    assert result["row"] is not None
    tree.validate()


def test_reader_restarts_when_descent_validation_fails():
    db, server = serve_db()
    ops = server.cc_ops
    latches = server.latches
    env = server.env
    key = int(db._workload.keys[5])
    done = {}

    def reader():
        row = yield from ops.lookup(server.reader, key, owner="r")
        done["row"] = row

    def meddler():
        # Bump the target leaf every 30us until the reader finishes: a bump
        # always lands between the reader's leaf snapshot and its
        # post-paging validation, forcing restarts.  The reader still
        # terminates: after the retry budget the pessimistic fallback
        # ignores version bumps entirely.
        while "row" not in done:
            latches.bump(db.index.page_path(key)[-1])
            yield env.timeout(30.0)

    env.process(reader())
    env.process(meddler())
    env.run()
    assert done["row"] is not None
    assert ops.read_restarts >= 1


def _split_safe_key(db, ops) -> int:
    """A fresh key routed to a leaf that one insert cannot split.

    Retry-budget exhaustion needs the optimistic path to fail on
    *validation* every time; an unsafe leaf would short-circuit straight to
    crabbing without burning the budget.
    """
    for stored in db._workload.keys.tolist():
        key = int(stored) + 1  # between stored keys (stride 2): always fresh
        leaf_pid = db.index.page_path(key)[-1]
        if ops._page_safe(db.index.store.page(leaf_pid)):
            return key
    raise AssertionError("no split-safe leaf in a freshly bulkloaded tree")


def test_writer_retry_budget_exhaustion_falls_back_to_crabbing():
    db, server = serve_db(retry_budget=2)
    ops = server.cc_ops
    latches = server.latches
    env = server.env
    key = _split_safe_key(db, ops)
    finished = {}

    def writer():
        row = yield from ops.insert(server.reader, server.disks, key, owner="w")
        finished["row"] = row

    def meddler():
        # Keep bumping the target leaf so every optimistic attempt fails
        # validation; after the budget the writer must crab (write latches
        # root-down), where the bumps are irrelevant, and still succeed.
        while "row" not in finished:
            latches.bump(db.index.page_path(key)[-1])
            yield env.timeout(30.0)

    env.process(writer())
    env.process(meddler())
    env.run()
    assert "row" in finished
    assert ops.pessimistic_writes == 1
    assert ops.write_restarts >= 2  # burned the whole budget first
    assert db.index.search(key) is not None
    db.index.validate()


def test_reader_retry_budget_exhaustion_falls_back_to_pessimistic():
    db, server = serve_db(retry_budget=2)
    ops = server.cc_ops
    latches = server.latches
    env = server.env
    key = int(db._workload.keys[8])
    finished = {}

    def reader():
        row = yield from ops.lookup(server.reader, key, owner="r")
        finished["row"] = row

    def meddler():
        while "row" not in finished:
            latches.bump(db.index.page_path(key)[-1])
            yield env.timeout(30.0)

    env.process(reader())
    env.process(meddler())
    env.run()
    assert finished["row"] is not None
    assert ops.pessimistic_reads == 1


def test_coarse_mode_serializes_behind_global_latch():
    db, server = serve_db(concurrency="coarse")
    reqs = []
    for i in range(12):
        kind = ("lookup", int(db._workload.keys[i]))
        if i % 3 == 0:
            kind = ("insert", None)
        req = server.make_request(kind, session=f"s{i % 3}")
        reqs.append(req)
        server.submit(req)
    server.run()
    assert all(r.outcome == "ok" for r in reqs)
    counters = server.latch_counters()
    # Every op took the one global latch; with >1 in flight, someone waited.
    assert counters["write_acquires"] == len(reqs)
    assert counters["write_waits"] > 0
    assert not server.latches.locked(GLOBAL_LATCH)
    db.index.validate()


def test_broken_mode_loses_updates_under_concurrent_splits():
    """The deliberately unvalidated path misroutes inserts when a split
    races the traversal — the seeded known-bad behaviour the
    linearizability checker must catch (see test_concurrent_serve)."""
    db, server = serve_db(concurrency="broken", max_concurrency=12)
    reqs = []
    for i in range(50):
        req = server.make_request(("insert", None), session=f"w{i % 6}")
        reqs.append(req)
        server.submit(req)
    server.run()
    acked = [r.op[1] for r in reqs if r.outcome == "ok"]
    assert acked, "broken mode still acknowledges inserts"
    lost = [key for key in acked if db.index.search(key) is None]
    assert lost, "expected the broken latch path to lose at least one insert"


def test_page_mode_loses_nothing_under_the_same_load():
    db, server = serve_db(concurrency="page", max_concurrency=12)
    reqs = []
    for i in range(50):
        req = server.make_request(("insert", None), session=f"w{i % 6}")
        reqs.append(req)
        server.submit(req)
    server.run()
    acked = [r.op[1] for r in reqs if r.outcome == "ok"]
    assert len(acked) == 50
    assert all(db.index.search(key) is not None for key in acked)
    db.index.validate()
    # The load genuinely contended: optimistic validation failed somewhere.
    assert server.latch_counters()["validation_failures"] > 0


def test_concurrent_scans_and_inserts_agree_with_final_tree():
    db, server = serve_db(max_concurrency=10)
    keys = [int(k) for k in db._workload.keys]
    reqs = []
    for i in range(30):
        if i % 3 == 2:
            op = ("insert", None)
        else:
            lo = keys[(i * 7) % len(keys)]
            op = ("scan", lo, lo + 3_000)
        req = server.make_request(op, session=f"s{i % 5}")
        reqs.append(req)
        server.submit(req)
    server.run()
    assert all(r.outcome == "ok" for r in reqs)
    for req in reqs:
        if req.kind == "scan":
            # Every scan's count must be bounded by the final range content
            # (inserts only add entries over the run).
            final = int(db.index.range_scan(req.op[1], req.op[2]).count)
            assert 0 <= req.rows <= final
    db.index.validate()


def test_concurrency_mode_is_validated():
    db = MiniDbms(num_rows=100, num_disks=2, page_size=512, seed=3, mature=False)
    with pytest.raises(ValueError, match="concurrency"):
        DbmsServer(db, concurrency="optimistic")
    with pytest.raises(ValueError, match="mode"):
        ConcurrentTreeOps(db, PageLatchManager(Environment()), mode="nope")
