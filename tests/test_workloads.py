"""Tests for workload generation."""

import numpy as np
import pytest

from repro.baselines import DiskBPlusTree
from repro.btree.context import TreeEnvironment
from repro.workloads import KeyWorkload, build_mature_tree


def test_keys_sorted_unique_and_reproducible():
    a = KeyWorkload(10_000, seed=1)
    b = KeyWorkload(10_000, seed=1)
    assert np.array_equal(a.keys, b.keys)
    assert np.all(np.diff(a.keys.astype(np.int64)) > 0)


def test_different_seeds_differ():
    a = KeyWorkload(1000, seed=1)
    b = KeyWorkload(1000, seed=2)
    assert not np.array_equal(a.keys, b.keys)


def test_search_keys_all_hits():
    w = KeyWorkload(5000, seed=3)
    existing = set(w.keys.tolist())
    for key in w.search_keys(200, hit_ratio=1.0).tolist():
        assert key in existing


def test_search_keys_with_misses():
    w = KeyWorkload(5000, seed=3)
    existing = set(w.keys.tolist())
    picks = w.search_keys(500, hit_ratio=0.0).tolist()
    assert all(key not in existing for key in picks)


def test_insert_keys_are_new():
    w = KeyWorkload(5000, seed=4)
    existing = set(w.keys.tolist())
    new_keys, new_tids = w.insert_keys(300)
    assert all(int(k) not in existing for k in new_keys)
    assert len(set(new_tids.tolist()) & set(w.tids.tolist())) == 0


def test_delete_keys_distinct_and_existing():
    w = KeyWorkload(1000, seed=5)
    picks = w.delete_keys(100).tolist()
    assert len(set(picks)) == 100
    existing = set(w.keys.tolist())
    assert all(k in existing for k in picks)


def test_range_scans_span_exact_entries():
    w = KeyWorkload(10_000, seed=6)
    for start, end in w.range_scans(20, span=500):
        lo = int(np.searchsorted(w.keys, start, side="left"))
        hi = int(np.searchsorted(w.keys, end, side="right"))
        assert hi - lo == 500


def test_range_scan_invalid_span():
    w = KeyWorkload(100, seed=6)
    with pytest.raises(ValueError):
        w.range_scans(1, span=0)
    with pytest.raises(ValueError):
        w.range_scans(1, span=101)


def test_split_for_maturity_partitions_cleanly():
    w = KeyWorkload(2000, seed=7)
    bulk_keys, bulk_tids, rest_keys, rest_tids = w.split_for_maturity(0.9)
    assert len(bulk_keys) + len(rest_keys) == 2000
    assert np.all(np.diff(bulk_keys.astype(np.int64)) > 0)  # sorted
    combined = set(bulk_keys.tolist()) | set(rest_keys.tolist())
    assert combined == set(w.keys.tolist())


def test_build_mature_tree_contains_everything():
    w = KeyWorkload(3000, seed=8)
    tree = DiskBPlusTree(TreeEnvironment(page_size=1024, buffer_pages=256))
    build_mature_tree(tree, w, bulk_fraction=0.8)
    assert tree.num_entries == 3000
    tree.validate()
    for key, tid in zip(w.keys[::97].tolist(), w.tids[::97].tolist()):
        assert tree.search(int(key)) == int(tid)
