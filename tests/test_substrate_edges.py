"""Edge-case coverage for the DES kernel, memory model, and storage layer."""

import pytest

from repro.des import AllOf, AnyOf, Environment, Resource, SimulationError, Store
from repro.mem import AddressSpace, CpuCostModel, MemoryConfig, MemorySystem, align_up
from repro.storage import DiskParameters, PageStore, StorageConfig


# -- DES -----------------------------------------------------------------------


class TestDesEdges:
    def test_event_fail_requires_exception(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_run_until_past_time_rejected(self):
        env = Environment()

        def proc():
            yield env.timeout(10)

        env.process(proc())
        env.run(until=5)
        with pytest.raises(ValueError):
            env.run(until=1)

    def test_run_until_advances_clock_even_without_events(self):
        env = Environment()
        env.run(until=100)
        assert env.now == 100

    def test_all_of_failure_propagates(self):
        env = Environment()
        bad = env.event()

        def failer():
            yield env.timeout(1)
            bad.fail(RuntimeError("boom"))

        def waiter():
            yield AllOf(env, [env.timeout(5), bad])

        env.process(failer())
        process = env.process(waiter())
        with pytest.raises(RuntimeError, match="boom"):
            env.run(until=process)

    def test_any_of_with_already_processed_event(self):
        env = Environment()
        done = env.event()
        done.succeed("early")
        log = []

        def proc():
            yield env.timeout(1)
            value = yield AnyOf(env, [done, env.timeout(50)])
            log.append((env.now, value))

        env.process(proc())
        env.run()
        assert log[0][0] == 1  # did not wait for the 50-tick timeout

    def test_process_is_alive_lifecycle(self):
        env = Environment()

        def work():
            yield env.timeout(3)

        process = env.process(work())
        assert process.is_alive
        env.run()
        assert not process.is_alive

    def test_active_process_visible_during_execution(self):
        env = Environment()
        seen = []

        def work():
            seen.append(env.active_process)
            yield env.timeout(1)

        process = env.process(work())
        env.run()
        assert seen == [process]
        assert env.active_process is None

    def test_resource_released_on_exception(self):
        env = Environment()
        resource = Resource(env, capacity=1)

        def crasher():
            with resource.request() as grant:
                yield grant
                raise ValueError("inside critical section")

        def follower():
            yield env.timeout(1)
            with resource.request() as grant:
                yield grant
                return "acquired"

        env.process(crasher())
        follower_proc = env.process(follower())
        with pytest.raises(ValueError):
            env.run()
        # The follower still gets the resource: the context manager released it.
        result = env.run(until=follower_proc)
        assert result == "acquired"

    def test_store_multiple_waiters_fifo(self):
        env = Environment()
        store = Store(env)
        got = []

        def consumer(name):
            item = yield store.get()
            got.append((name, item))

        env.process(consumer("a"))
        env.process(consumer("b"))

        def producer():
            yield env.timeout(1)
            store.put(1)
            store.put(2)

        env.process(producer())
        env.run()
        assert got == [("a", 1), ("b", 2)]


# -- memory model -------------------------------------------------------------------


class TestMemoryEdges:
    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            MemoryConfig(line_size=48)
        with pytest.raises(ValueError):
            MemoryConfig(l1_size=100_000)

    def test_lines_touched_boundaries(self):
        config = MemoryConfig()
        assert list(config.lines_touched(0, 64)) == [0]
        assert list(config.lines_touched(63, 2)) == [0, 1]
        assert list(config.lines_touched(128, 0)) == []
        assert list(config.lines_touched(100, 1)) == [1]

    def test_zero_byte_read_is_free(self):
        mem = MemorySystem()
        mem.read(0, 0)
        assert mem.stats.total_cycles == 0

    def test_l2_direct_mapped_conflicts_through_system(self):
        mem = MemorySystem()
        l2_lines = mem.config.l2_size // mem.config.line_size
        mem.read(0, 4)
        mem.read(l2_lines * 64, 4)  # same L2 set, evicts line 0 from L2
        # Force L1 eviction of line 0 as well by filling its L1 set.
        l1_sets = mem.l1.num_sets
        mem.read(l1_sets * 64, 4)
        mem.read(2 * l1_sets * 64, 4)
        before = mem.stats.memory_fetches
        mem.read(0, 4)  # L2 lost it -> full memory fetch
        assert mem.stats.memory_fetches == before + 1

    def test_prefetch_pipelines_through_bus(self):
        mem = MemorySystem()
        mem.prefetch(0, 4 * 64)
        # Bus grants are 10 cycles apart: last line lands ~T1 + 3*Tnext.
        landed = sorted(mem._inflight.values())
        assert landed[1] - landed[0] == pytest.approx(10)
        assert landed[-1] - landed[0] == pytest.approx(30)

    def test_probe_cost_helper(self):
        cpu = CpuCostModel()
        busy, other = cpu.probe_cost()
        assert busy == cpu.compare
        assert other == cpu.mispredict_rate * cpu.branch_mispredict

    def test_stats_str_is_informative(self):
        mem = MemorySystem()
        mem.read(0, 4)
        text = str(mem.stats)
        assert "busy" in text and "mem fetches 1" in text

    def test_stats_reset(self):
        mem = MemorySystem()
        mem.read(0, 4)
        mem.stats.reset()
        assert mem.stats.total_cycles == 0
        assert mem.stats.memory_fetches == 0

    def test_address_space_labels_and_high_water(self):
        space = AddressSpace(base=4096)
        first = space.alloc(100, alignment=64, label="pool")
        second = space.alloc(10, alignment=64, label="nodes")
        assert first % 64 == 0
        assert second >= first + 100
        assert space.high_water == second + 10
        labels = [label for label, __, __ in space.regions()]
        assert labels == ["pool", "nodes"]

    def test_address_space_invalid_inputs(self):
        space = AddressSpace()
        with pytest.raises(ValueError):
            space.alloc(0)
        with pytest.raises(ValueError):
            align_up(5, 3)
        with pytest.raises(ValueError):
            AddressSpace(base=-1)


# -- storage -----------------------------------------------------------------------------


class TestStorageEdges:
    def test_disk_parameters_branches(self):
        params = DiskParameters(
            seek_time_us=5000, rotational_latency_us=3000,
            track_to_track_us=1000, transfer_rate_bytes_per_us=40.0,
            sequential_window_blocks=8,
        )
        transfer = 4096 / 40.0
        assert params.service_time_us(-1, 5, 4096) == 8000 + transfer  # cold head
        assert params.service_time_us(5, 5, 4096) == transfer  # same block
        assert params.service_time_us(5, 9, 4096) == 1000 + transfer  # near
        assert params.service_time_us(5, 100, 4096) == 8000 + transfer  # far

    def test_sequential_window_zero_always_seeks(self):
        params = DiskParameters(sequential_window_blocks=0)
        near = params.service_time_us(5, 6, 4096)
        far = params.service_time_us(5, 5000, 4096)
        assert near == far

    def test_storage_config_validation(self):
        with pytest.raises(ValueError):
            StorageConfig(page_size=1000)
        with pytest.raises(ValueError):
            StorageConfig(num_disks=0)
        with pytest.raises(ValueError):
            StorageConfig(buffer_pool_pages=0)

    def test_page_store_place_and_rebuild_free_list(self):
        store = PageStore(4096)
        store.place(5, "page-five")
        store.place(2, "page-two")
        store.rebuild_free_list()
        # Gaps 0,1,3,4 become reusable ids.
        fresh = {store.allocate(f"p{i}") for i in range(4)}
        assert fresh == {0, 1, 3, 4}
        assert store.allocate("next") == 6

    def test_page_store_place_conflicts(self):
        store = PageStore(4096)
        store.place(1, "a")
        with pytest.raises(KeyError):
            store.place(1, "b")
        with pytest.raises(ValueError):
            store.place(-3, "c")
