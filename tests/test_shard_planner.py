"""Tests for key distributions, op sampling and shard-boundary placement."""

import random

import numpy as np
import pytest

from repro.shard import BoundaryPlanner, ShardPlan
from repro.workloads import (
    KeyDistribution,
    KeyWorkload,
    MixedOpStream,
    OpMix,
    OpSample,
    RangeFreshKeys,
    sample_ops,
)

# -- KeyDistribution --------------------------------------------------------


def test_uniform_distribution_covers_every_position():
    dist = KeyDistribution.uniform(10)
    rng = random.Random(1)
    seen = {dist.draw(rng) for __ in range(500)}
    assert seen == set(range(10))
    assert abs(dist.position_weights().sum() - 1.0) < 1e-12


def test_zipf_distribution_is_skewed_and_seeded():
    dist = KeyDistribution.zipf(1000, seed=5)
    weights = dist.position_weights()
    assert weights.max() > 5 * weights.min()  # genuinely skewed
    again = KeyDistribution.zipf(1000, seed=5)
    assert np.array_equal(weights, again.position_weights())
    other = KeyDistribution.zipf(1000, seed=6)
    assert not np.array_equal(weights, other.position_weights())


def test_zipf_hot_block_is_scattered_not_leading():
    # The block permutation moves the hottest block away from position 0
    # for most seeds; check a specific seed where it does.
    for seed in range(10):
        weights = KeyDistribution.zipf(1000, blocks=64, seed=seed).position_weights()
        if int(np.argmax(weights)) > 64:
            return
    pytest.fail("hottest block led the universe for 10 consecutive seeds")


def test_distribution_validation():
    with pytest.raises(ValueError, match="non-empty"):
        KeyDistribution(np.array([]))
    with pytest.raises(ValueError, match="non-negative"):
        KeyDistribution(np.array([1.0, -1.0]))
    with pytest.raises(ValueError, match="theta"):
        KeyDistribution.zipf(100, theta=0.0)


def test_stream_distribution_none_matches_uniform_string():
    keys = KeyWorkload(500, seed=7).keys
    plain = MixedOpStream(keys, OpMix(), seed=3)
    named = MixedOpStream(keys, OpMix(), seed=3, distribution="uniform")
    ops_a = [plain.next_op() for __ in range(200)]
    ops_b = [named.next_op() for __ in range(200)]
    assert ops_a == ops_b  # "uniform" is the historical draw path, byte-exact


def test_stream_zipf_distribution_is_deterministic_and_in_universe():
    keys = KeyWorkload(500, seed=7).keys
    key_set = set(int(k) for k in keys)
    a = MixedOpStream(keys, OpMix(), seed=3, distribution="zipf")
    b = MixedOpStream(keys, OpMix(), seed=3, distribution="zipf")
    ops = [a.next_op() for __ in range(300)]
    assert ops == [b.next_op() for __ in range(300)]
    for op in ops:
        if op[0] == "lookup":
            assert op[1] in key_set
        elif op[0] == "scan":
            assert op[1] in key_set and op[2] in key_set and op[1] <= op[2]


def test_stream_rejects_unknown_or_mis_sized_distribution():
    keys = KeyWorkload(100, seed=7).keys
    with pytest.raises(ValueError, match="unknown distribution"):
        MixedOpStream(keys, OpMix(), distribution="hotcold")
    with pytest.raises(ValueError, match="positions"):
        MixedOpStream(keys, OpMix(), distribution=KeyDistribution.uniform(50))


# -- sample_ops -------------------------------------------------------------


def test_sample_ops_is_deterministic_and_complete():
    mix = OpMix(lookup=0.6, scan=0.3, insert=0.1, scan_span=16)
    a = sample_ops(1000, mix, distribution="zipf", count=2000, seed=9)
    b = sample_ops(1000, mix, distribution="zipf", count=2000, seed=9)
    assert np.array_equal(a.lookups, b.lookups)
    assert np.array_equal(a.scan_starts, b.scan_starts)
    assert a.lookups.size + a.scan_starts.size + a.inserts == 2000
    assert a.scan_span == 16
    assert a.scan_starts.max() <= 1000 - 16


# -- planner statistics (hand-computed) -------------------------------------


def _sample(lookups, scan_starts, span):
    return OpSample(
        lookups=np.asarray(lookups, dtype=np.int64),
        scan_starts=np.asarray(scan_starts, dtype=np.int64),
        scan_span=span,
        inserts=0,
    )


def test_position_load_hand_computed():
    # Lookups at 2, 2, 5; one scan starting at 1 covering positions 1-3.
    load = BoundaryPlanner.position_load(_sample([2, 2, 5], [1], 3), 10)
    assert load.tolist() == [0, 1, 3, 1, 0, 1, 0, 0, 0, 0]


def test_straddle_costs_hand_computed():
    # One scan covers positions 1-3: only cuts at 2 and 3 split it.
    costs = BoundaryPlanner.straddle_costs(_sample([], [1], 3), 10)
    assert costs.tolist() == [0, 0, 1, 1, 0, 0, 0, 0, 0, 0]


# -- placements -------------------------------------------------------------


def test_equal_width_cuts_snap_to_stored_keys():
    keys = KeyWorkload(800, seed=7).keys
    plan = BoundaryPlanner(keys, 4).equal_width()
    key_set = set(int(k) for k in keys)
    assert len(plan.cuts) == 3
    for cut in plan.cuts:
        assert cut in key_set
    assert plan.placement == "equal_width"


def test_optimized_balances_load_and_splits_fewer_scans():
    keys = KeyWorkload(4000, seed=7).keys
    mix = OpMix(lookup=0.7, scan=0.2, insert=0.1, scan_span=64)
    sample = sample_ops(keys.size, mix, distribution="zipf", count=4096, seed=3)
    planner = BoundaryPlanner(keys, 4)
    equal = planner.equal_width()
    opt = planner.optimized(sample)
    key_set = set(int(k) for k in keys)
    for cut in opt.cuts:
        assert cut in key_set
    # Balance: no shard more than ~50% above the mean sampled load.
    load = opt.predicted_load(sample)
    assert load.max() <= 1.5 * load.mean()
    # Fan-out: strictly fewer fragments than the naive baseline on skew.
    assert opt.predicted_fragments(sample) < equal.predicted_fragments(sample)


def test_optimized_is_deterministic():
    keys = KeyWorkload(2000, seed=7).keys
    sample = sample_ops(keys.size, OpMix(), distribution="zipf", count=2048, seed=4)
    a = BoundaryPlanner(keys, 4).optimized(sample)
    b = BoundaryPlanner(keys, 4).optimized(sample)
    assert a.cuts == b.cuts and a.cut_positions == b.cut_positions


def test_optimized_empty_sample_falls_back_to_position_quantiles():
    keys = KeyWorkload(400, seed=7).keys
    plan = BoundaryPlanner(keys, 4).optimized(_sample([], [], 8))
    sizes = np.diff([0, *plan.cut_positions, keys.size])
    assert sizes.min() >= 1
    assert sizes.max() - sizes.min() <= 2  # near-equal key counts per shard


# -- ShardPlan --------------------------------------------------------------


def test_shard_plan_validation():
    with pytest.raises(ValueError, match="cuts"):
        ShardPlan(shard_count=3, placement="x", cuts=(10,), cut_positions=(1,))
    with pytest.raises(ValueError, match="increasing"):
        ShardPlan(shard_count=3, placement="x", cuts=(20, 10), cut_positions=(2, 1))
    with pytest.raises(ValueError, match="shard_count"):
        ShardPlan(shard_count=0, placement="x")


def test_shard_for_key_boundary_goes_above():
    plan = ShardPlan(
        shard_count=3, placement="x", cuts=(100, 200), cut_positions=(10, 20),
        universe_size=30,
    )
    assert plan.shard_for_key(99) == 0
    assert plan.shard_for_key(100) == 1  # a key equal to a cut goes above it
    assert plan.shard_for_key(199) == 1
    assert plan.shard_for_key(200) == 2
    assert plan.key_ranges() == [(None, 100), (100, 200), (200, None)]


def test_fragments_hand_computed():
    plan = ShardPlan(
        shard_count=3, placement="x", cuts=(100, 200), cut_positions=(10, 20),
        universe_size=30,
    )
    assert plan.fragments(50, 250) == [(0, 50, 99), (1, 100, 199), (2, 200, 250)]
    assert plan.fragments(120, 150) == [(1, 120, 150)]
    assert plan.fragments(99, 100) == [(0, 99, 99), (1, 100, 100)]


# -- RangeFreshKeys ---------------------------------------------------------


def test_range_fresh_keys_mints_successors_in_range():
    keys = np.array([100, 104, 110], dtype=np.int64)
    fresh = RangeFreshKeys(keys, 100, 112)
    assert [fresh.take(), fresh.take(), fresh.take()] == [101, 105, 111]
    assert fresh.minted == [101, 105, 111]
    assert fresh.taken == 3
    with pytest.raises(RuntimeError, match="exhausted"):
        fresh.take()


def test_range_fresh_keys_unbounded_ends():
    keys = np.array([10, 14], dtype=np.int64)
    fresh = RangeFreshKeys(keys, None, None)
    assert fresh.take() == 11


def test_range_fresh_keys_validates_range():
    keys = np.array([10, 14], dtype=np.int64)
    with pytest.raises(ValueError, match="below"):
        RangeFreshKeys(keys, 12, None)
    with pytest.raises(ValueError, match="at or above"):
        RangeFreshKeys(keys, None, 14)
    with pytest.raises(ValueError, match="at least one"):
        RangeFreshKeys(np.array([], dtype=np.int64), None, None)
