"""Reverse range scans (the paper's DB2 integration adds backward links)."""

import numpy as np
import pytest

from repro.baselines import DiskBPlusTree, MicroIndexTree, PrefetchingBPlusTree
from repro.btree.context import TreeEnvironment
from repro.core import CacheFirstFpTree, DiskFirstFpTree
from repro.mem import MemorySystem

FACTORIES = {
    "disk": lambda **kw: DiskBPlusTree(TreeEnvironment(page_size=1024, buffer_pages=256, **kw)),
    "micro": lambda **kw: MicroIndexTree(TreeEnvironment(page_size=1024, buffer_pages=256, **kw)),
    "fp-disk": lambda **kw: DiskFirstFpTree(TreeEnvironment(page_size=1024, buffer_pages=256, **kw)),
    "fp-cache": lambda **kw: CacheFirstFpTree(
        TreeEnvironment(page_size=1024, buffer_pages=256, **kw), num_keys_hint=10_000
    ),
}


def loaded(kind, n=4000, **kw):
    tree = FACTORIES[kind](**kw)
    keys = list(range(10, 10 + 3 * n, 3))
    tree.bulkload(keys, [k * 2 for k in keys], fill=0.9)
    return tree, keys


@pytest.mark.parametrize("kind", sorted(FACTORIES))
def test_reverse_equals_forward(kind):
    tree, keys = loaded(kind)
    for lo_i, hi_i in [(0, len(keys) - 1), (100, 3000), (7, 8), (50, 50)]:
        lo, hi = keys[lo_i], keys[hi_i]
        assert tree.range_scan_reverse(lo, hi) == tree.range_scan(lo, hi)


@pytest.mark.parametrize("kind", sorted(FACTORIES))
def test_reverse_bounds_in_gaps(kind):
    tree, keys = loaded(kind, n=500)
    assert tree.range_scan_reverse(keys[3] + 1, keys[9] - 1).count == 5
    assert tree.range_scan_reverse(0, keys[0] - 1).count == 0
    assert tree.range_scan_reverse(keys[-1] + 1, keys[-1] + 99).count == 0


@pytest.mark.parametrize("kind", sorted(FACTORIES))
def test_reverse_inverted_range_empty(kind):
    tree, keys = loaded(kind, n=100)
    assert tree.range_scan_reverse(keys[10], keys[5]).count == 0


@pytest.mark.parametrize("kind", sorted(FACTORIES))
def test_reverse_after_updates(kind):
    tree, keys = loaded(kind, n=2000)
    rng = np.random.default_rng(6)
    for key in rng.choice(keys, size=200, replace=False):
        tree.delete(int(key))
    for key in range(11, 4000, 17):
        if (key - 10) % 3 != 0:
            tree.insert(key, key)
    lo, hi = keys[100], keys[1500]
    assert tree.range_scan_reverse(lo, hi) == tree.range_scan(lo, hi)
    tree.validate()


@pytest.mark.parametrize("kind", sorted(FACTORIES))
def test_reverse_with_duplicates(kind):
    tree = FACTORIES[kind]()
    for __ in range(30):
        tree.insert(500, 1)
    for key in range(100, 900, 7):
        tree.insert(key, 2)
    assert tree.range_scan_reverse(500, 500) == tree.range_scan(500, 500)
    assert tree.range_scan_reverse(490, 510) == tree.range_scan(490, 510)


def test_reverse_scan_is_traced():
    mem = MemorySystem()
    tree = DiskBPlusTree(TreeEnvironment(page_size=1024, buffer_pages=256, mem=mem))
    keys = list(range(10, 10_000, 3))
    with mem.paused():
        tree.bulkload(keys, keys)
    mem.clear_caches()
    with mem.measure() as phase:
        tree.range_scan_reverse(keys[100], keys[-100])
    assert phase.dcache_stall_cycles > 0


def test_pbtree_has_no_reverse_scan():
    tree = PrefetchingBPlusTree()
    tree.bulkload([1, 2, 3], [1, 2, 3])
    with pytest.raises(NotImplementedError):
        tree.range_scan_reverse(1, 3)
