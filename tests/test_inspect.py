"""Tests for index introspection."""

import pytest

from repro import CacheFirstFpTree, DiskBPlusTree, DiskFirstFpTree, MicroIndexTree, TreeEnvironment
from repro.btree.inspect import inspect_tree
from repro.workloads import KeyWorkload, build_mature_tree


def make(kind, **kw):
    if kind == "disk":
        return DiskBPlusTree(TreeEnvironment(page_size=1024, buffer_pages=256, **kw))
    if kind == "micro":
        return MicroIndexTree(TreeEnvironment(page_size=1024, buffer_pages=256, **kw))
    if kind == "fp-disk":
        return DiskFirstFpTree(TreeEnvironment(page_size=1024, buffer_pages=256, **kw))
    return CacheFirstFpTree(
        TreeEnvironment(page_size=1024, buffer_pages=256, **kw), num_keys_hint=10_000
    )


@pytest.mark.parametrize("kind", ["disk", "micro", "fp-disk", "fp-cache"])
def test_report_basic_fields(kind):
    tree = make(kind)
    workload = KeyWorkload(3000)
    keys, tids = workload.bulkload_arrays()
    tree.bulkload(keys, tids, fill=0.8)
    report = inspect_tree(tree)
    assert report.num_entries == 3000
    assert report.num_pages == tree.num_pages
    assert report.leaf_pages == len(tree.leaf_page_ids())
    assert 0.5 < report.avg_leaf_fill <= 1.0
    assert report.min_leaf_fill <= report.avg_leaf_fill <= report.max_leaf_fill
    assert report.bytes_per_entry > 8  # key + tid at minimum
    assert kind.replace("fp-", "") in report.kind or "B+tree" in report.kind


def test_fill_tracks_bulkload_factor():
    low = make("disk")
    high = make("disk")
    workload = KeyWorkload(3000)
    keys, tids = workload.bulkload_arrays()
    low.bulkload(keys, tids, fill=0.6)
    high.bulkload(keys, tids, fill=1.0)
    assert inspect_tree(low).avg_leaf_fill < inspect_tree(high).avg_leaf_fill


def test_disk_first_reports_line_utilization():
    tree = make("fp-disk")
    workload = KeyWorkload(4000)
    keys, tids = workload.bulkload_arrays()
    tree.bulkload(keys, tids)
    report = inspect_tree(tree)
    assert report.inpage_nodes > len(tree.leaf_page_ids())  # leaves + roots
    assert report.line_utilization is not None
    assert 0.3 < report.line_utilization <= 1.0
    assert 0.5 < report.avg_node_fill <= 1.0


def test_cache_first_reports_overflow_pages():
    tree = CacheFirstFpTree(
        TreeEnvironment(page_size=4096, buffer_pages=1024), num_keys_hint=100_000
    )
    workload = KeyWorkload(60_000)
    keys, tids = workload.bulkload_arrays()
    tree.bulkload(keys, tids)
    report = inspect_tree(tree)
    assert report.overflow_pages == tree.overflow_page_count()
    assert report.overflow_pages > 0


def test_mature_tree_fill_drops():
    bulk = make("fp-disk")
    workload = KeyWorkload(4000)
    keys, tids = workload.bulkload_arrays()
    bulk.bulkload(keys, tids)
    churned = make("fp-disk")
    build_mature_tree(churned, KeyWorkload(4000), bulk_fraction=0.5)
    assert inspect_tree(churned).avg_leaf_fill < inspect_tree(bulk).avg_leaf_fill


def test_format_is_readable():
    tree = make("fp-disk")
    tree.bulkload(range(0, 5000, 2), range(2500))
    text = inspect_tree(tree).format()
    assert "entries" in text
    assert "fill" in text
    assert "utilization" in text


def test_unsupported_type_rejected():
    with pytest.raises(TypeError):
        inspect_tree(object())
