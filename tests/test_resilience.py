"""Tests for chaos schedules, client resilience, brownout, and crash-under-load."""

import json
import random

import pytest

from repro.faults import ChaosSchedule, FaultPlan
from repro.serve import (
    BreakerConfig,
    BreakerState,
    BrownoutConfig,
    BrownoutController,
    ChaosRunner,
    CircuitBreaker,
    ClientRetryPolicy,
    DbmsServer,
)
from repro.dbms.engine import MiniDbms


def small_db(num_rows=2_000, seed=7):
    return MiniDbms(num_rows=num_rows, num_disks=4, page_size=4096, seed=seed, mature=False)


# -- chaos schedule grammar -------------------------------------------------


class TestChaosSchedule:
    def test_parse_full_storm(self):
        schedule = ChaosSchedule.parse(
            "corrupt rate=0.25; limp disk=2 x8 @0.05s; kill disk=0 @200ms; crash wal=20",
            seed=5,
        )
        assert len(schedule.events) == 4
        plan = schedule.to_fault_plan()
        assert plan.seed == 5
        assert plan.default.corrupt_rate == 0.25
        assert plan.disks[2].limp_factor == 8.0
        assert plan.disks[2].limp_after_us == 50_000.0
        assert plan.disks[0].fail_at_us == 200_000.0
        assert plan.crash_after_wal_appends == 20
        assert schedule.has_crash_points
        assert not plan.is_clean

    def test_time_suffixes_agree(self):
        for text in ("kill disk=0 @250000", "kill disk=0 @250000us",
                     "kill disk=0 @250ms", "kill disk=0 @0.25s"):
            plan = ChaosSchedule.parse(text, seed=1).to_fault_plan()
            assert plan.disks[0].fail_at_us == 250_000.0, text

    def test_torn_and_page_crash_points(self):
        plan = ChaosSchedule.parse("torn wal=3; crash page=2", seed=0).to_fault_plan()
        assert plan.torn_wal_append == 3
        assert plan.crash_after_page_writes == 2

    def test_per_disk_rates_merge_with_default(self):
        plan = ChaosSchedule.parse(
            "corrupt rate=0.1; timeout rate=0.2 disk=1; limp disk=1 x4", seed=0
        ).to_fault_plan()
        assert plan.default.corrupt_rate == 0.1
        # The per-disk profile inherits the array-wide corrupt rate.
        assert plan.disks[1].corrupt_rate == 0.1
        assert plan.disks[1].timeout_rate == 0.2
        assert plan.disks[1].limp_factor == 4.0

    def test_describe_mentions_every_event(self):
        schedule = ChaosSchedule.parse("limp disk=3 x2; crash wal=1", seed=0)
        text = schedule.describe()
        assert "disk 3" in text and "limps" in text and "wal" in text

    @pytest.mark.parametrize("bad", [
        "explode disk=0",           # unknown verb
        "limp disk=0",              # limp needs a factor
        "corrupt disk=0",           # corrupt needs rate=
        "kill disk=0",              # kill needs a time
        "crash wal=1 page=2",       # one crash point per clause
        "crash",                    # crash needs wal= or page=
        "limp disk=0 x2; limp disk=0 x3",  # conflicting duplicate setting
    ])
    def test_rejects_malformed_clauses(self, bad):
        with pytest.raises(ValueError):
            ChaosSchedule.parse(bad, seed=0).to_fault_plan()

    def test_empty_schedule_compiles_clean(self):
        plan = ChaosSchedule.parse("", seed=3).to_fault_plan()
        assert plan.is_clean


class TestFaultPlanCrashPoints:
    def test_is_clean_false_when_crash_point_armed(self):
        # Regression: is_clean used to ignore the write-path crash points,
        # so a plan whose only fault was a crash looked harmless.
        assert FaultPlan().is_clean
        for name in FaultPlan.CRASH_POINT_FIELDS:
            plan = FaultPlan(**{name: 1})
            assert plan.has_crash_points, name
            assert not plan.is_clean, name

    def test_without_crash_points_strips_only_crash_points(self):
        schedule = ChaosSchedule.parse("limp disk=1 x4; crash wal=2", seed=9)
        plan = schedule.to_fault_plan()
        stripped = plan.without_crash_points()
        assert not stripped.has_crash_points
        assert stripped.disks[1].limp_factor == 4.0  # read faults stay live
        assert not stripped.is_clean


# -- client retry policy ----------------------------------------------------


class TestClientRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = ClientRetryPolicy(
            backoff_base_us=1_000.0, backoff_multiplier=2.0,
            backoff_cap_us=4_000.0, jitter_fraction=0.0,
        )
        rng = random.Random(0)
        delays = [policy.backoff_delay_us(retry, rng) for retry in (1, 2, 3, 4)]
        assert delays == [1_000.0, 2_000.0, 4_000.0, 4_000.0]

    def test_jitter_is_seeded_and_bounded(self):
        policy = ClientRetryPolicy(backoff_base_us=10_000.0, jitter_fraction=0.25)
        a = [policy.backoff_delay_us(1, random.Random(42)) for __ in range(3)]
        b = [policy.backoff_delay_us(1, random.Random(42)) for __ in range(3)]
        assert a == b  # same seed, same jitter
        for delay in a:
            assert 7_500.0 <= delay <= 12_500.0

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            ClientRetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            ClientRetryPolicy(backoff_cap_us=1.0, backoff_base_us=10.0)
        with pytest.raises(ValueError):
            ClientRetryPolicy(jitter_fraction=1.5)


# -- circuit breaker --------------------------------------------------------


class ManualClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def make(self, **overrides):
        clock = ManualClock()
        config = BreakerConfig(**{
            "window": 4, "min_samples": 4, "failure_threshold": 0.5,
            "cooldown_us": 1_000.0, "half_open_probes": 2, **overrides,
        })
        return CircuitBreaker(config, clock=clock), clock

    def test_stays_closed_below_min_samples(self):
        breaker, __ = self.make()
        for __ in range(3):
            breaker.record_failure()
        assert breaker.state == BreakerState.CLOSED
        assert breaker.allow()

    def test_trips_on_failure_rate(self):
        breaker, __ = self.make()
        breaker.record_success()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == BreakerState.CLOSED
        breaker.record_failure()  # 2/4 failures hits the 0.5 threshold
        assert breaker.state == BreakerState.OPEN
        assert not breaker.allow()

    def test_open_half_open_closed_cycle(self):
        breaker, clock = self.make()
        breaker.trip()
        assert not breaker.allow()
        assert breaker.retry_after_us() == 1_000.0
        clock.now = 1_000.0
        assert breaker.allow()  # cooldown elapsed: half-open, probe admitted
        assert breaker.state == BreakerState.HALF_OPEN
        breaker.record_success()
        assert breaker.state == BreakerState.HALF_OPEN  # one probe is not enough
        breaker.record_success()
        assert breaker.state == BreakerState.CLOSED
        states = [(frm, to) for __, frm, to in breaker.transitions]
        assert states == [
            ("closed", "open"), ("open", "half_open"), ("half_open", "closed"),
        ]

    def test_failed_probe_reopens(self):
        breaker, clock = self.make()
        breaker.trip()
        clock.now = 1_000.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == BreakerState.OPEN
        assert not breaker.allow()  # a fresh cooldown started
        assert breaker.retry_after_us() == 1_000.0

    def test_close_clears_the_window(self):
        # Pre-trip failures must not linger and instantly re-trip the
        # breaker after it has proven the server healthy again.
        breaker, clock = self.make()
        breaker.record_failure()
        breaker.record_failure()
        breaker.trip()
        clock.now = 1_000.0
        breaker.allow()
        breaker.record_success()
        breaker.record_success()
        assert breaker.state == BreakerState.CLOSED
        breaker.record_failure()
        breaker.record_failure()  # only 2 samples in the fresh window
        assert breaker.state == BreakerState.CLOSED

    def test_requires_clock(self):
        with pytest.raises(ValueError):
            CircuitBreaker(BreakerConfig())


# -- brownout ladder --------------------------------------------------------


def make_server(**kwargs):
    db = small_db()
    return DbmsServer(db, max_concurrency=8, queue_depth=16, pool_frames=32, **kwargs)


class TestBrownoutLadder:
    def breach(self, controller, count=10):
        for __ in range(count):
            controller._observe("lookup", None, ok=False)
        controller.evaluate_window()

    def healthy(self, controller, count=10):
        for __ in range(count):
            controller._observe("lookup", 100.0, ok=True)
        controller.evaluate_window()

    def test_ladder_steps_down_and_applies_knobs(self):
        server = make_server()
        config = BrownoutConfig(recover_intervals=2)
        controller = BrownoutController(server, config)
        assert server.scan_prefetch_depth == server.base_scan_prefetch_depth

        self.breach(controller)  # level 1: prefetch shrinks
        assert controller.level == 1
        assert server.scan_prefetch_depth == config.degraded_prefetch_depth
        assert server.reader.max_outstanding_prefetches == config.prefetch_cap

        self.breach(controller)  # level 2: scans truncate
        assert server.max_scan_pages == config.max_scan_pages

        self.breach(controller)  # level 3: inserts rejected
        assert server.reject_inserts

        self.breach(controller)  # level 4: token pool shrinks
        assert controller.level == 4
        assert server.admission.max_concurrency == max(
            1, int(server.admission.base_concurrency * config.token_shrink)
        )

        self.breach(controller)  # the ladder bottoms out at 4
        assert controller.level == 4

    def test_ladder_recovers_one_rung_per_streak(self):
        server = make_server()
        config = BrownoutConfig(recover_intervals=2)
        controller = BrownoutController(server, config)
        self.breach(controller)
        self.breach(controller)
        assert controller.level == 2

        self.healthy(controller)
        assert controller.level == 2  # one healthy window is not a streak
        self.healthy(controller)
        assert controller.level == 1  # streak of 2: one rung back up
        assert server.max_scan_pages is None

        self.healthy(controller)
        self.healthy(controller)
        assert controller.level == 0  # fully restored
        assert server.scan_prefetch_depth == server.base_scan_prefetch_depth
        assert server.reader.max_outstanding_prefetches is None
        assert not server.reject_inserts
        assert server.admission.max_concurrency == server.admission.base_concurrency

    def test_latency_breach_trips_like_failures(self):
        server = make_server()
        controller = BrownoutController(server, BrownoutConfig(p99_slo_us=1_000.0))
        for __ in range(10):
            controller._observe("scan", 5_000.0, ok=True)  # slow but successful
        controller.evaluate_window()
        assert controller.level == 1

    def test_small_windows_are_ignored(self):
        server = make_server()
        controller = BrownoutController(server, BrownoutConfig(min_window=6))
        for __ in range(3):
            controller._observe("lookup", None, ok=False)
        controller.evaluate_window()
        assert controller.level == 0

    def test_brownout_rejection_sheds_inserts_conserved(self):
        server = make_server()
        server.reject_inserts = True
        request = server.make_request(("insert", None), session="t")
        event = server.submit(request)
        server.env.run(until=event)
        assert request.outcome == "shed"
        assert server.stats.brownout_rejected == 1
        assert server.stats.conserved()


# -- admission resize -------------------------------------------------------


def test_admission_resize_grants_queued_waiters():
    from repro.des import Environment
    from repro.serve import AdmissionController

    env = Environment()
    admission = AdmissionController(env, max_concurrency=1, max_queue_depth=8)
    order = []

    def holder(name):
        ticket = yield from admission.admit()
        order.append(name)
        yield env.timeout(1_000.0)
        admission.release(ticket)

    def grower():
        yield env.timeout(10.0)
        admission.resize(3)

    for name in "abc":
        env.process(holder(name))
    env.process(grower())
    env.run()
    assert order == ["a", "b", "c"]
    # b and c were granted by the resize, long before a released its token.
    assert admission.max_concurrency == 3


# -- chaos runner: faults under live load -----------------------------------


class TestChaosUnderLoad:
    def run_chaos(self, text, *, resilient=True, sessions=4, ops=12, seed=11, **kwargs):
        schedule = ChaosSchedule.parse(text, seed=5)
        return ChaosRunner(
            schedule,
            num_rows=2_000,
            sessions=sessions,
            ops_per_session=ops,
            retry=ClientRetryPolicy(backoff_cap_us=20_000.0) if resilient else None,
            breaker=BreakerConfig() if resilient else None,
            brownout=BrownoutConfig(p99_slo_us=15_000.0) if resilient else None,
            seed=seed,
            **kwargs,
        ).run()

    def test_read_faults_under_load_conserved(self):
        report = self.run_chaos("corrupt rate=0.3; limp disk=1 x6 @0.02s")
        assert report["conserved"]
        assert report["crashes"] == 0
        assert report["ok_ops"] > 0
        assert report["client_retries"] > 0  # faults actually surfaced

    def test_clean_schedule_is_boring(self):
        report = self.run_chaos("", resilient=True)
        assert report["conserved"]
        assert report["ok_ops"] == report["client_ops"]
        assert report["client_retries"] == 0
        assert report["crashes"] == 0

    def test_crash_under_load_recovers_and_conserves(self):
        report = self.run_chaos("crash wal=4", ops=20)
        assert report["crashes"] == 1
        assert report["conserved"]
        assert report["lost_inserts"] == 0
        assert report["scrub_entries"] > 0
        (entry,) = report["crash_log"]
        assert entry["point"] == "wal-append"
        # Every session still finished its full workload after recovery.
        assert report["ok_ops"] + report["gave_up"] == report["client_ops"]

    def test_crash_drains_in_flight_requests(self):
        report = self.run_chaos("crash wal=4", ops=20)
        (entry,) = report["crash_log"]
        assert entry["drained_in_flight"] >= 1
        assert report["failed"] >= entry["drained_in_flight"]

    def test_breaker_trips_on_crash(self):
        report = self.run_chaos("crash wal=4", ops=20)
        transitions = [(frm, to) for __, frm, to in report["breaker_transitions"]]
        assert ("closed", "open") in transitions or ("half_open", "open") in transitions
        # The breaker recovered: it half-opened after the cooldown.
        assert any(to == "half_open" for __, to in transitions)

    def test_full_storm_two_runs_byte_identical(self):
        text = "corrupt rate=0.25; limp disk=2 x8 @0.03s; kill disk=0 @0.1s; crash wal=6"
        a = self.run_chaos(text, ops=15, deadline_us=30_000.0)
        b = self.run_chaos(text, ops=15, deadline_us=30_000.0)
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
        assert a["crashes"] == 1
        assert a["conserved"]
        assert a["lost_inserts"] == 0

    def test_different_seeds_diverge(self):
        a = self.run_chaos("corrupt rate=0.3", seed=11)
        b = self.run_chaos("corrupt rate=0.3", seed=12)
        assert json.dumps(a, sort_keys=True) != json.dumps(b, sort_keys=True)

    def test_committed_inserts_survive_crash(self):
        report = self.run_chaos("crash wal=6", ops=25, sessions=5)
        assert report["crashes"] == 1
        assert report["committed_inserts"] > 0  # the check had teeth
        assert report["lost_inserts"] == 0
