"""End-to-end tests: concurrent serving, linearizability, crash-safe splits.

The serving layer in ``concurrency="page"`` mode lets sessions genuinely
race inside the tree (optimistic reads, latch-crabbing writes); these tests
record the resulting histories on the DES clock and validate them with the
Wing–Gong checker — including the two headline acceptance criteria:

* the deliberately unsound ``"broken"`` mode (no validation, inserts
  applied into the stale traversal leaf) manufactures lost updates the
  checker must reject, while ``"page"`` histories under identical load are
  accepted; and
* a crash injected at the start of a page split *while concurrent writers
  race inside the tree* recovers via the WAL with zero acknowledged
  inserts lost, a scrub-clean tree, a linearizable acknowledged history,
  and byte-identical reports and histories across two same-seed runs.
"""

from __future__ import annotations

import pytest

from repro.dbms.engine import MiniDbms
from repro.faults.schedule import ChaosSchedule
from repro.serve.resilience import ChaosRunner, ClientRetryPolicy
from repro.serve.server import DbmsServer
from repro.serve.stats import ServerStats
from repro.verify.linearizability import HistoryRecorder, check_linearizable
from repro.workloads.ops import MixedOpStream, OpMix


def make_server(seed: int, concurrency: str, num_rows: int = 300) -> DbmsServer:
    db = MiniDbms(num_rows=num_rows, num_disks=2, page_size=512, seed=seed, mature=False)
    server = DbmsServer(
        db,
        max_concurrency=8,
        queue_depth=256,
        pool_frames=32,
        page_process_us=50.0,
        seed=seed,
        concurrency=concurrency,
    )
    recorder = HistoryRecorder(clock=lambda: server.env.now)
    recorder.initial_keys = [int(k) for k in db._workload.keys]
    server.attach_history(recorder)
    return server


def burst(server: DbmsServer, ops, sessions: int = 6):
    """Submit every op up front (one burst) and run the simulation dry."""
    requests = []
    for i, op in enumerate(ops):
        request = server.make_request(op, session=f"s{i % sessions}")
        requests.append(request)
        server.submit(request)
    server.run()
    return requests


def insert_burst_then_audit(seed: int, concurrency: str):
    """The seeded known-bad recipe: race 50 inserts across 6 sessions on a
    small-page tree (plenty of splits), then look up every acked key."""
    server = make_server(seed, concurrency)
    inserts = burst(server, [("insert", None)] * 50)
    acked = [r.op[1] for r in inserts if r.outcome == "ok"]
    assert acked, "the burst must acknowledge some inserts"
    burst(server, [("lookup", key) for key in acked])
    return server, check_linearizable(server.history.history())


@pytest.mark.parametrize("seed", [3, 7])
def test_broken_mode_history_is_rejected(seed):
    server, result = insert_burst_then_audit(seed, "broken")
    assert not result.ok
    assert "no linearization" in result.reason
    # The rejection has a concrete cause: some acked insert is unreachable.
    acked = [r.op[1] for r in server.requests if r.kind == "insert" and r.outcome == "ok"]
    assert any(server.db.index.search(key) is None for key in acked)


@pytest.mark.parametrize("seed", [3, 7, 11, 19])
def test_page_mode_history_is_accepted(seed):
    server, result = insert_burst_then_audit(seed, "page")
    assert result.ok, result.reason
    server.db.index.validate()
    # The latches genuinely arbitrated: the same load that breaks "broken"
    # mode produced validation conflicts here, and none were lost.
    assert server.latch_counters()["validation_failures"] > 0


@pytest.mark.parametrize("seed", [5, 13])
def test_mixed_traffic_history_is_accepted(seed):
    """Lookups, scans and inserts racing through the page-latched tree
    produce a linearizable history (and an intact tree)."""
    server = make_server(seed, "page")
    stream = MixedOpStream(
        server.db._workload.keys, OpMix(lookup=0.4, scan=0.2, insert=0.4), seed=seed
    )
    requests = burst(server, [stream.next_op() for __ in range(60)])
    assert all(r.outcome == "ok" for r in requests)
    result = check_linearizable(server.history.history())
    assert result.ok, result.reason
    server.db.index.validate()


# -- crash during a concurrent split ------------------------------------------


def crash_split_runner() -> ChaosRunner:
    """The crash-mid-split scenario: insert-heavy traffic on 512-byte pages
    (so splits are frequent), machine dies at the start of split #4 while
    writers are racing inside the tree."""
    return ChaosRunner(
        ChaosSchedule.parse("crash split=4", seed=5),
        num_rows=500,
        num_disks=4,
        page_size=512,
        sessions=6,
        ops_per_session=24,
        mix=OpMix(lookup=0.3, scan=0.1, insert=0.6),
        retry=ClientRetryPolicy(max_attempts=3),
        seed=5,
        concurrency="page",
        record_history=True,
    )


@pytest.fixture(scope="module")
def crash_split_runs():
    """Two identical crash-mid-split runs (shared across the tests below)."""
    out = []
    for __ in range(2):
        runner = crash_split_runner()
        report = runner.run()
        out.append((runner, report))
    return out


def test_crash_during_concurrent_split_recovers_cleanly(crash_split_runs):
    runner, report = crash_split_runs[0]
    assert report["crashes"] == 1
    (crash,) = report["crash_log"]
    assert crash["point"] == "page-split"
    assert crash["drained_in_flight"] > 1, "the crash must hit concurrent in-flight ops"
    assert crash["scrub_ok"] is True
    assert report["scrubs"] == 1
    assert report["scrub_violations"] == 0
    assert report["conserved"] is True
    assert report["lost_inserts"] == 0, "every acknowledged insert survived recovery"
    assert report["committed_inserts"] > 0


def test_crash_during_concurrent_split_history_linearizes(crash_split_runs):
    runner, __ = crash_split_runs[0]
    history = runner.history.history()
    assert history.pending, "ops killed by the crash must stay pending"
    result = check_linearizable(history)
    assert result.ok, result.reason


def test_crash_during_concurrent_split_is_deterministic(crash_split_runs):
    import json

    (runner_a, report_a), (runner_b, report_b) = crash_split_runs
    assert json.dumps(report_a, sort_keys=True) == json.dumps(report_b, sort_keys=True)
    assert runner_a.history.history().to_json() == runner_b.history.history().to_json()


# -- satellite regressions -----------------------------------------------------


def test_leaf_map_cache_tracks_splits():
    """The cached leaf map must not go stale across page splits."""
    db = MiniDbms(num_rows=300, num_disks=2, page_size=512, seed=3, mature=False)
    first = db.cached_leaf_map()
    assert db.cached_leaf_map() is first  # epoch unchanged: cache hit
    splits_before = db.index.page_splits
    key = int(db._workload.keys[-1])
    while db.index.page_splits == splits_before:
        key += 2
        db.insert(key)
    refreshed = db.cached_leaf_map()
    assert refreshed is not first
    # The refreshed map routes to the key's current leaf; a stale map from
    # before the split could not know the new page.
    __, pids = refreshed
    assert db.index.page_path(key)[-1] in [int(p) for p in pids]


def test_leaf_map_cache_invalidated_by_recovery():
    schedule = ChaosSchedule.parse("", seed=1)
    db = MiniDbms(num_rows=200, num_disks=2, page_size=1024, seed=3, mature=False)
    db.enable_wal(schedule.to_fault_plan(), checkpoint_interval=4)
    first = db.cached_leaf_map()
    db.insert(int(db._workload.keys[-1]) + 2)
    db.crash_and_recover()
    assert db.cached_leaf_map() is not first  # generation bumped


def test_scrub_counters_surface_in_stats_snapshot():
    stats = ServerStats()
    assert stats.scrubs == 0 and stats.scrub_violations == 0
    stats.scrub_pass()
    stats.scrub_violation()
    assert stats.scrubs == 2
    assert stats.scrub_violations == 1
    resilience = stats.snapshot()["resilience"]
    assert resilience["scrubs"] == 2
    assert resilience["scrub_violations"] == 1
