"""Smoke tests: every example script runs end-to-end (at reduced scale).

Each example is imported as a module, its scale constants are shrunk, and
``main()`` is executed.  This keeps the examples from rotting as the
library evolves.
"""

import importlib.util
import io
import os
import sys
from contextlib import redirect_stdout

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


def load_example(name):
    path = os.path.join(EXAMPLES_DIR, f"{name}.py")
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def run_main(module, **overrides):
    for attribute, value in overrides.items():
        setattr(module, attribute, value)
    captured = io.StringIO()
    with redirect_stdout(captured):
        module.main()
    return captured.getvalue()


def test_quickstart(monkeypatch):
    module = load_example("quickstart")
    out = run_main(module, NUM_KEYS=20_000, OPERATIONS=60)
    assert "faster" in out
    assert "Results agree" in out


def test_index_shootout():
    module = load_example("index_shootout")
    module.NUM_KEYS = 20_000
    module.OPERATIONS = 50
    captured = io.StringIO()
    with redirect_stdout(captured):
        for page_size in (8192,):
            module.run_page_size(page_size)
    out = captured.getvalue()
    assert "disk-first fpB+tree" in out


def test_index_tuning(monkeypatch):
    module = load_example("index_tuning")
    captured = io.StringIO()
    with redirect_stdout(captured):
        module.print_table2()
        module.sweep_widths(8192, num_keys=15_000, searches=40)
    out = captured.getvalue()
    assert "selected by the optimizer" in out


def test_multidisk_scan():
    module = load_example("multidisk_scan")
    out = run_main(module, NUM_KEYS=20_000, SPAN=5_000)
    assert "speedup" in out
    assert "disk parallelism" in out


def test_mini_dbms():
    module = load_example("mini_dbms")
    out = run_main(module, ROWS=10_000, DISKS=8)
    assert "correct" in out
    assert "prefetchers" in out


def test_persistence():
    module = load_example("persistence")
    out = run_main(module, NUM_KEYS=8_000)
    assert "verified identical" in out
    assert "line-slot utilization" in out


def test_cursors_and_reverse():
    module = load_example("cursors_and_reverse")
    out = run_main(module, NUM_KEYS=15_000)
    assert "identical results" in out
    assert "jump-pointer array" in out
