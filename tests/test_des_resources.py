"""Unit tests for DES resources and stores."""

import pytest

from repro.des import Environment, PriorityStore, Resource, SimulationError, Store


def test_resource_serializes_access():
    env = Environment()
    resource = Resource(env, capacity=1)
    log = []

    def user(name, hold):
        with resource.request() as grant:
            yield grant
            log.append((name, "in", env.now))
            yield env.timeout(hold)
            log.append((name, "out", env.now))

    env.process(user("a", 5))
    env.process(user("b", 3))
    env.run()
    assert log == [("a", "in", 0), ("a", "out", 5), ("b", "in", 5), ("b", "out", 8)]


def test_resource_capacity_two_overlaps():
    env = Environment()
    resource = Resource(env, capacity=2)
    entered = []

    def user(name):
        with resource.request() as grant:
            yield grant
            entered.append((name, env.now))
            yield env.timeout(4)

    for name in "abc":
        env.process(user(name))
    env.run()
    assert entered == [("a", 0), ("b", 0), ("c", 4)]


def test_resource_fifo_grant_order():
    env = Environment()
    resource = Resource(env, capacity=1)
    order = []

    def user(name):
        with resource.request() as grant:
            yield grant
            order.append(name)
            yield env.timeout(1)

    for name in ["first", "second", "third", "fourth"]:
        env.process(user(name))
    env.run()
    assert order == ["first", "second", "third", "fourth"]


def test_resource_counts():
    env = Environment()
    resource = Resource(env, capacity=1)

    def holder():
        with resource.request() as grant:
            yield grant
            assert resource.count == 1
            yield env.timeout(2)

    def prober():
        yield env.timeout(1)
        assert resource.queue_length == 1

    def late():
        with resource.request() as grant:
            yield grant
            yield env.timeout(1)

    env.process(holder())
    env.process(late())
    env.process(prober())
    env.run()
    assert resource.count == 0
    assert resource.queue_length == 0


def test_invalid_capacity_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_release_of_foreign_request_rejected():
    env = Environment()
    first = Resource(env, capacity=1)
    second = Resource(env, capacity=1)
    request = first.request()
    with pytest.raises(SimulationError):
        second.release(request)


def test_store_fifo():
    env = Environment()
    store = Store(env)
    received = []

    def producer():
        for item in range(3):
            store.put(item)
            yield env.timeout(1)

    def consumer():
        for __ in range(3):
            item = yield store.get()
            received.append((item, env.now))

    env.process(producer())
    env.process(consumer())
    env.run()
    assert [item for item, __ in received] == [0, 1, 2]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    got = []

    def consumer():
        item = yield store.get()
        got.append((item, env.now))

    def producer():
        yield env.timeout(7)
        store.put("late")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == [("late", 7)]


def test_priority_store_orders_items():
    env = Environment()
    store = PriorityStore(env)
    out = []

    def run():
        for value in [5, 1, 3]:
            store.put(value)
        for __ in range(3):
            item = yield store.get()
            out.append(item)

    env.process(run())
    env.run()
    assert out == [1, 3, 5]


def test_priority_store_key_function():
    env = Environment()
    store = PriorityStore(env, key=lambda item: item["rank"])
    out = []

    def run():
        store.put({"rank": 2, "name": "b"})
        store.put({"rank": 1, "name": "a"})
        first = yield store.get()
        out.append(first["name"])

    env.process(run())
    env.run()
    assert out == ["a"]
