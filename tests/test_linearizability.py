"""Tests for the Wing–Gong linearizability checker (:mod:`repro.verify`).

Unit scenarios pin down the model semantics (real-time order, pending-op
completion rules, scan truncation) and the known-bad histories the checker
must reject; hypothesis properties generate adversarial interleavings that
are linearizable *by construction* (intervals jittered around ground-truth
linearization points) and assert the checker accepts every one — a failing
example shrinks and is archived as a replayable JSON artifact.
"""

from __future__ import annotations

from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.verify.linearizability import (
    CheckResult,
    History,
    HistoryRecorder,
    Op,
    check_linearizable,
)

#: Where property-test failures archive their (shrunk) counterexample; the
#: CI concurrency-smoke job uploads this directory on failure.
ARTIFACTS = Path(__file__).resolve().parent.parent / "test-artifacts" / "linearizability"


def op(op_id, kind, args, t0, t1, result=None, session=None):
    return Op(
        op_id=op_id,
        session=session if session is not None else f"s{op_id}",
        kind=kind,
        args=tuple(args),
        invoked_at=float(t0),
        responded_at=None if t1 is None else float(t1),
        result=result,
    )


# -- unit scenarios ----------------------------------------------------------


def test_empty_history_is_linearizable():
    result = check_linearizable(History())
    assert result.ok
    assert result.linearization == []
    assert bool(result) is True


def test_sequential_story_is_accepted_with_full_witness():
    history = History(
        ops=[
            op(0, "insert", (5,), 0, 1),
            op(1, "lookup", (5,), 2, 3, result=True),
            op(2, "scan", (0, 10), 4, 5, result=1),
        ]
    )
    result = check_linearizable(history)
    assert result.ok
    assert sorted(result.linearization) == [0, 1, 2]


def test_lost_update_is_rejected():
    """The seeded known-bad shape: an acknowledged insert that a strictly
    later lookup does not observe has no sequential explanation."""
    history = History(
        ops=[
            op(0, "insert", (5,), 0, 1),
            op(1, "lookup", (5,), 2, 3, result=False),
        ]
    )
    result = check_linearizable(history)
    assert not result.ok
    assert result.linearization is None
    assert "no linearization" in result.reason


def test_concurrent_lookup_may_see_either_side_of_an_insert():
    for seen in (True, False):
        history = History(
            ops=[
                op(0, "lookup", (5,), 0, 5, result=seen),
                op(1, "insert", (5,), 1, 2),
            ]
        )
        assert check_linearizable(history).ok, f"seen={seen} must linearize"


def test_pending_insert_effect_is_ambiguous():
    """A crash-killed insert may or may not have applied: a later lookup
    may legally observe either outcome."""
    for seen in (True, False):
        history = History(
            ops=[
                op(0, "insert", (5,), 0, None),
                op(1, "lookup", (5,), 10, 11, result=seen),
            ]
        )
        assert check_linearizable(history).ok, f"seen={seen} must linearize"


def test_pending_reads_are_dropped():
    history = History(
        ops=[
            op(0, "lookup", (5,), 0, None, result=True),  # absurd if kept
            op(1, "scan", (0, 10), 1, None, result=99),
            op(2, "insert", (7,), 2, 3),
            op(3, "lookup", (7,), 4, 5, result=True),
        ]
    )
    assert check_linearizable(history).ok


def test_scan_counts_against_initial_contents():
    base = dict(initial_keys=[2, 4, 6])
    ok = History(ops=[op(0, "scan", (1, 5), 0, 1, result=2)], **base)
    bad = History(ops=[op(0, "scan", (1, 5), 0, 1, result=3)], **base)
    assert check_linearizable(ok).ok
    assert not check_linearizable(bad).ok


def test_stale_scan_is_rejected():
    """A scan strictly after an acknowledged insert must count it."""
    history = History(
        ops=[
            op(0, "insert", (5,), 0, 1),
            op(1, "scan", (0, 10), 2, 3, result=0),
        ]
    )
    assert not check_linearizable(history).ok


def test_truncated_scan_is_unconstrained():
    history = History(
        ops=[
            op(0, "insert", (5,), 0, 1),
            op(1, "scan", (0, 10), 2, 3, result=None),  # brownout-truncated
        ]
    )
    assert check_linearizable(history).ok


def test_memoization_keeps_overlapping_inserts_cheap():
    # 40 fully-overlapping inserts: naively 40! orders, but the model state
    # is a pure function of the applied set, so the first dive succeeds.
    history = History(ops=[op(i, "insert", (i,), 0, 100) for i in range(40)])
    result = check_linearizable(history)
    assert result.ok
    assert result.states_explored <= 100


def test_state_budget_exhaustion_is_a_hard_failure():
    history = History(
        ops=[
            op(0, "insert", (1,), 0, 10),
            op(1, "insert", (2,), 0, 10),
            op(2, "lookup", (3,), 20, 21, result=True),  # unsatisfiable
        ]
    )
    result = check_linearizable(history, max_states=1)
    assert not result.ok
    assert result.reason == "state budget exhausted"


def test_witness_replays_through_the_sequential_model():
    history = History(
        ops=[
            op(0, "lookup", (5,), 0, 4, result=False),
            op(1, "insert", (5,), 1, 3),
            op(2, "scan", (0, 10), 2, 6, result=2),
            op(3, "insert", (7,), 2, 5),
            op(4, "lookup", (7,), 6, 7, result=True),
        ]
    )
    result = check_linearizable(history)
    assert result.ok
    by_id = {o.op_id: o for o in history.ops}
    contents: set[int] = set()
    for op_id in result.linearization:
        o = by_id[op_id]
        if o.kind == "insert":
            contents.add(o.args[0])
        elif o.kind == "lookup":
            assert bool(o.result) == (o.args[0] in contents)
        else:
            assert o.result == sum(1 for k in contents if o.args[0] <= k <= o.args[1])
    # Real-time order: if a responded before b was invoked, a comes first.
    position = {op_id: i for i, op_id in enumerate(result.linearization)}
    for a in history.ops:
        for b in history.ops:
            if a.responded_at is not None and a.responded_at < b.invoked_at:
                if a.op_id in position and b.op_id in position:
                    assert position[a.op_id] < position[b.op_id]


# -- recorder and serialization ----------------------------------------------


def test_recorder_stamps_the_simulation_clock():
    now = [0.0]
    recorder = HistoryRecorder(clock=lambda: now[0])
    recorder.initial_keys = [1, 2]
    a = recorder.invoke("s1", "insert", (5,))
    now[0] = 3.0
    b = recorder.invoke("s2", "lookup", (5,))
    now[0] = 7.0
    recorder.respond(a, True)
    history = recorder.history()
    assert history.initial_keys == [1, 2]
    assert history.ops[a].invoked_at == 0.0
    assert history.ops[a].responded_at == 7.0
    assert history.ops[b].pending
    with pytest.raises(ValueError, match="already responded"):
        recorder.respond(a, True)
    with pytest.raises(ValueError, match="unknown operation kind"):
        recorder.invoke("s1", "delete", (5,))


def test_recorder_history_is_a_snapshot():
    recorder = HistoryRecorder(clock=lambda: 0.0)
    a = recorder.invoke("s1", "insert", (5,))
    snapshot = recorder.history()
    recorder.respond(a, True)
    assert snapshot.ops[0].pending  # unaffected by the later respond


def test_history_json_round_trip(tmp_path):
    history = History(
        ops=[
            op(0, "insert", (5,), 0, 1),
            op(1, "scan", (0, 10), 2, None, result=None),
            op(2, "lookup", (5,), 2, 3, result=True),
        ],
        initial_keys=[9, 11],
    )
    clone = History.from_json(history.to_json())
    assert clone.to_json() == history.to_json()
    assert [o.to_dict() for o in clone.ops] == [o.to_dict() for o in history.ops]

    path = history.write(tmp_path / "deep" / "artifact.json")
    replayed = History.read(path)
    assert replayed.to_json() == history.to_json()
    # The archived artifact must re-check to the same verdict.
    assert check_linearizable(replayed).ok == check_linearizable(history).ok


# -- property tests: adversarial interleavings --------------------------------


@st.composite
def linearizable_histories(draw):
    """A history that is linearizable *by construction*.

    Ground truth: ops execute sequentially against a key multiset at
    linearization points 10, 20, 30, ...; each op's recorded interval is
    jittered around its point (up to 7 time units each way, so neighboring
    intervals genuinely overlap).  Some inserts are then left pending —
    their ground-truth effect stays visible, exercising the completion
    rule's "may have applied" branch.
    """
    initial = draw(st.lists(st.integers(0, 50), max_size=6))
    contents = list(initial)
    n = draw(st.integers(1, 12))
    ops = []
    for i in range(n):
        kind = draw(st.sampled_from(("lookup", "scan", "insert")))
        point = 10.0 * (i + 1)
        invoked = point - draw(st.integers(0, 7))
        responded = point + draw(st.integers(0, 7))
        if kind == "insert":
            key = draw(st.integers(0, 50))
            contents.append(key)
            if draw(st.booleans()) and draw(st.booleans()):
                responded = None  # crash-killed after taking effect
            ops.append(op(i, "insert", (key,), invoked, responded))
        elif kind == "lookup":
            key = draw(st.integers(0, 50))
            ops.append(op(i, "lookup", (key,), invoked, responded, result=key in contents))
        else:
            lo = draw(st.integers(0, 50))
            hi = lo + draw(st.integers(0, 20))
            count = sum(1 for k in contents if lo <= k <= hi)
            ops.append(op(i, "scan", (lo, hi), invoked, responded, result=count))
    return History(ops=ops, initial_keys=initial)


props = settings(
    max_examples=120, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def _assert_accepted(history: History, label: str) -> CheckResult:
    result = check_linearizable(history)
    if not result.ok:
        path = history.write(ARTIFACTS / f"{label}.json")
        raise AssertionError(
            "checker rejected a linearizable-by-construction history "
            f"({result.reason}); replayable artifact: {path}"
        )
    return result


@props
@given(history=linearizable_histories())
def test_generated_interleavings_are_accepted(history):
    # On failure, hypothesis shrinks `history` and the minimal rejected
    # interleaving lands in test-artifacts/ for replay via History.read.
    result = _assert_accepted(history, "generated-interleaving")
    completed = {o.op_id for o in history.completed}
    assert completed <= set(result.linearization)


@props
@given(history=linearizable_histories())
def test_phantom_read_is_always_rejected(history):
    # Append a lookup that observes a key no insert (completed, pending or
    # initial) ever produced: no linearization can explain it.
    last = max((o.responded_at or o.invoked_at for o in history.ops), default=0.0)
    phantom = op(len(history.ops), "lookup", (999,), last + 1, last + 2, result=True)
    bad = History(ops=[*history.ops, phantom], initial_keys=history.initial_keys)
    result = check_linearizable(bad)
    assert not result.ok
    assert result.linearization is None


@props
@given(history=linearizable_histories(), data=st.data())
def test_dropping_an_acknowledged_insert_is_rejected(history, data):
    """Flip one completed insert's later observer to 'not seen': if the key
    is observably present (a strictly-later lookup saw it and no other
    insert of that key exists), the flipped history must be rejected."""
    inserts = [
        o
        for o in history.completed
        if o.kind == "insert"
        and o.args[0] not in history.initial_keys
        and sum(1 for p in history.ops if p.kind == "insert" and p.args == o.args) == 1
    ]
    if not inserts:
        return  # nothing observable to flip in this draw
    victim = data.draw(st.sampled_from(inserts))
    denier = op(
        len(history.ops),
        "lookup",
        (victim.args[0],),
        victim.responded_at + 1,
        victim.responded_at + 2,
        result=False,
    )
    bad = History(ops=[*history.ops, denier], initial_keys=history.initial_keys)
    assert not check_linearizable(bad).ok
