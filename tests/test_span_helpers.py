"""Tests for the public leaf-span helpers and timed-scan parameters."""

import pytest

from repro import CacheFirstFpTree, DiskBPlusTree, DiskFirstFpTree, TreeEnvironment
from repro.bench.io_scan import first_key_of_leaf_page, leaf_pids_for_span, timed_range_scan

FACTORIES = {
    "disk": lambda: DiskBPlusTree(TreeEnvironment(page_size=1024, buffer_pages=256)),
    "fp-disk": lambda: DiskFirstFpTree(TreeEnvironment(page_size=1024, buffer_pages=256)),
    "fp-cache": lambda: CacheFirstFpTree(
        TreeEnvironment(page_size=1024, buffer_pages=256), num_keys_hint=10_000
    ),
}


def loaded(kind, n=5000):
    tree = FACTORIES[kind]()
    keys = list(range(10, 10 + 2 * n, 2))
    tree.bulkload(keys, [1] * n)
    return tree, keys


@pytest.mark.parametrize("kind", sorted(FACTORIES))
def test_first_keys_increase_along_chain(kind):
    tree, __ = loaded(kind)
    firsts = [first_key_of_leaf_page(tree, pid) for pid in tree.leaf_page_ids()]
    assert firsts == sorted(firsts)


@pytest.mark.parametrize("kind", sorted(FACTORIES))
def test_span_covers_requested_range(kind):
    tree, keys = loaded(kind)
    lo, hi = keys[1000], keys[3000]
    pids, extra = leaf_pids_for_span(tree, lo, hi)
    all_pids = tree.leaf_page_ids()
    start = all_pids.index(pids[0])
    assert all_pids[start : start + len(pids)] == pids  # contiguous
    # The covered pages really contain the endpoints.
    assert first_key_of_leaf_page(tree, pids[0]) <= lo
    if extra:
        assert first_key_of_leaf_page(tree, extra[0]) > hi
    # Extras continue the chain.
    assert all_pids[start + len(pids) : start + len(pids) + len(extra)] == extra


def test_span_at_keyspace_edges():
    tree, keys = loaded("disk")
    pids, __ = leaf_pids_for_span(tree, 0, keys[0])
    assert pids[0] == tree.leaf_page_ids()[0]
    pids, extra = leaf_pids_for_span(tree, keys[-1], keys[-1] + 100)
    assert pids[-1] == tree.leaf_page_ids()[-1]
    assert extra == []


def test_first_key_unsupported_type():
    with pytest.raises(TypeError):
        first_key_of_leaf_page(object(), 0)


def test_timed_scan_respects_pool_frames():
    """A pool smaller than the range forces re-reads on revisits only."""
    tree, keys = loaded("disk", n=8000)
    pids, __ = leaf_pids_for_span(tree, keys[0], keys[-1])
    timing = timed_range_scan(tree.store, pids, num_disks=2, use_prefetch=True, pool_frames=8)
    # Forward-only scan: pool size does not force extra reads.
    assert timing.disk_reads == len(pids)


def test_timed_scan_page_process_time_adds_up():
    tree, keys = loaded("disk", n=2000)
    pids, __ = leaf_pids_for_span(tree, keys[0], keys[-1])
    fast = timed_range_scan(tree.store, pids, num_disks=1, page_process_us=0.0)
    slow = timed_range_scan(tree.store, pids, num_disks=1, page_process_us=5000.0)
    assert slow.elapsed_us - fast.elapsed_us == pytest.approx(5000.0 * len(pids))
