"""Tests for the access tracer (the index-to-cache-simulator bridge)."""

from repro.btree.trace import NULL_TRACER, Tracer
from repro.mem import MemorySystem


def test_null_tracer_is_inactive_and_harmless():
    assert not NULL_TRACER.active
    NULL_TRACER.read(0, 64)
    NULL_TRACER.write(0, 64)
    NULL_TRACER.prefetch(0, 64)
    NULL_TRACER.probe(0)
    NULL_TRACER.move(0, 64, 128)
    NULL_TRACER.scan(0, 64)
    NULL_TRACER.busy(100)
    NULL_TRACER.visit_node()
    NULL_TRACER.call_overhead()


def test_active_only_when_mem_enabled():
    mem = MemorySystem()
    tracer = Tracer(mem)
    assert tracer.active
    with mem.paused():
        assert not tracer.active


def test_probe_charges_load_and_branch():
    mem = MemorySystem()
    tracer = Tracer(mem)
    tracer.probe(0)
    assert mem.stats.memory_fetches == 1
    assert mem.stats.busy_cycles == mem.cpu.compare
    assert mem.stats.other_stall_cycles == mem.cpu.mispredict_rate * mem.cpu.branch_mispredict


def test_move_charges_source_reads_and_copy_busy():
    mem = MemorySystem()
    tracer = Tracer(mem)
    tracer.move(10_240, 0, 256)  # 4 lines src, 4 lines dst (line-aligned)
    assert mem.stats.memory_fetches == 4  # source lines are demand loads
    assert mem.stats.store_fetches == 4  # destination lines write-allocate
    assert mem.stats.busy_cycles >= 4 * mem.cpu.copy_per_line


def test_move_zero_bytes_is_free():
    mem = MemorySystem()
    Tracer(mem).move(0, 64, 0)
    assert mem.stats.total_cycles == 0


def test_scan_charges_per_line_busy():
    mem = MemorySystem()
    tracer = Tracer(mem)
    tracer.scan(0, 256, per_line_busy=3.0)
    assert mem.stats.memory_fetches == 4
    assert mem.stats.busy_cycles == 12.0


def test_overheads_route_to_busy():
    mem = MemorySystem()
    tracer = Tracer(mem)
    tracer.visit_node()
    tracer.call_overhead()
    assert mem.stats.busy_cycles == mem.cpu.node_visit + mem.cpu.function_call
    assert mem.stats.dcache_stall_cycles == 0
