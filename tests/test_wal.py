"""Tests for the write-ahead-log layer below recovery.

Covers: record framing and torn-tail scanning, the log device, the crash
injector's deterministic counters, buffer-pool dirty tracking (flush-on-
evict, no-steal), the WalManager transaction/observer/checkpoint protocol,
and the satellite regressions (invalidate pin leak, corrupt_page being
self-inverse).
"""

import zlib

import pytest

from repro import DiskFirstFpTree, TreeEnvironment, WalManager
from repro.des import Environment
from repro.faults import CrashInjector, FaultPlan, SimulatedCrash, WriteOutcome
from repro.storage import BufferPool, BufferPoolExhausted, PageStore, StorageConfig
from repro.wal import LogRecord, RecordType, TreeMeta, WriteAheadLog, encode_record, scan_records
from repro.wal.records import NO_PAGE


def small_tree(page_size=1024, buffer_pages=32, n=1000):
    tree = DiskFirstFpTree(TreeEnvironment(page_size=page_size, buffer_pages=buffer_pages))
    keys = list(range(0, 2 * n, 2))
    tree.bulkload(keys, [k + 1 for k in keys])
    return tree


# -- record framing ----------------------------------------------------------


class TestRecordFraming:
    def test_round_trip(self):
        records = [
            LogRecord(1, RecordType.BEGIN, 7),
            LogRecord(2, RecordType.ALLOC, 7, 12),
            LogRecord(3, RecordType.PAGE_IMAGE, 7, 12, b"\x01" * 300),
            LogRecord(4, RecordType.FREE, 7, 3),
            LogRecord(5, RecordType.COMMIT, 7, NO_PAGE, TreeMeta(0, 2, 1, 99).pack()),
            LogRecord(6, RecordType.CHECKPOINT, 0, NO_PAGE, TreeMeta(0, 2, 1, 99).pack()),
        ]
        data = b"".join(encode_record(r) for r in records)
        parsed, valid = scan_records(data)
        assert parsed == records
        assert valid == len(data)

    def test_tree_meta_round_trip(self):
        meta = TreeMeta(root_pid=5, height=3, first_leaf_pid=-1, entries=1 << 40)
        assert TreeMeta.unpack(meta.pack()) == meta

    def test_torn_tail_is_truncated(self):
        records = [LogRecord(i + 1, RecordType.PAGE_IMAGE, 1, i, b"x" * 64) for i in range(4)]
        data = b"".join(encode_record(r) for r in records)
        keep = len(encode_record(records[0])) * 2
        torn = data[: keep + 10]  # third record loses most of its bytes
        parsed, valid = scan_records(torn)
        assert [r.lsn for r in parsed] == [1, 2]
        assert valid == keep

    def test_bit_flip_truncates_from_damage(self):
        records = [LogRecord(i + 1, RecordType.BEGIN, i + 1) for i in range(3)]
        data = bytearray(b"".join(encode_record(r) for r in records))
        one = len(encode_record(records[0]))
        data[one + 8] ^= 0xFF  # corrupt the second record's body
        parsed, valid = scan_records(bytes(data))
        assert [r.lsn for r in parsed] == [1]
        assert valid == one

    def test_lsn_desync_stops_scan(self):
        data = encode_record(LogRecord(1, RecordType.BEGIN, 1)) + encode_record(
            LogRecord(9, RecordType.BEGIN, 1)
        )
        parsed, valid = scan_records(data)
        assert [r.lsn for r in parsed] == [1]
        assert valid < len(data)

    def test_empty_and_tiny_streams(self):
        assert scan_records(b"") == ([], 0)
        assert scan_records(b"\x01\x02\x03") == ([], 0)

    def test_unknown_type_stops_scan(self):
        good = encode_record(LogRecord(1, RecordType.BEGIN, 1))
        import struct

        body = struct.pack("<QBqqI", 2, 200, 1, -1, 0)  # type 200 undefined
        bad = struct.pack("<I", zlib.crc32(body)) + body
        parsed, valid = scan_records(good + bad)
        assert [r.lsn for r in parsed] == [1]
        assert valid == len(good)


# -- the log device ----------------------------------------------------------


class TestWriteAheadLog:
    def test_append_assigns_lsns_and_charges_time(self):
        log = WriteAheadLog(Environment(), page_size=1024)
        for i in range(5):
            record = log.append(RecordType.BEGIN, i + 1)
            assert record.lsn == i + 1
        assert log.appends == 5
        assert log.bytes_written == len(log.data)
        assert log.write_us > 0
        assert [r.lsn for r in log.records()] == [1, 2, 3, 4, 5]

    def test_sequential_appends_cheaper_than_first(self):
        # The first append pays a real seek; later same-block appends only
        # reposition track-to-track, which is the point of a dedicated
        # log spindle.
        log = WriteAheadLog(Environment(), page_size=64 * 1024)
        t0 = log.env.now
        log.append(RecordType.BEGIN, 1)
        first = log.env.now - t0
        t1 = log.env.now
        log.append(RecordType.BEGIN, 2)
        second = log.env.now - t1
        assert second < first

    def test_torn_append_leaves_half_record(self):
        plan = FaultPlan.crash_point(torn_wal=3)
        log = WriteAheadLog(Environment(), page_size=1024, crash=CrashInjector(plan))
        log.append(RecordType.BEGIN, 1)
        log.append(RecordType.BEGIN, 2)
        with pytest.raises(SimulatedCrash):
            log.append(RecordType.BEGIN, 3)
        parsed, valid = scan_records(log.data)
        assert [r.lsn for r in parsed] == [1, 2]
        assert valid < len(log.data)  # the torn half is on media but invalid
        assert log.torn_appends == 1
        assert log.appends == 2  # the torn append never completed


# -- crash injector ----------------------------------------------------------


class TestCrashInjector:
    def test_counters_are_deterministic(self):
        plan = FaultPlan.crash_point(wal_appends=3, page_writes=2)
        for __ in range(2):
            injector = CrashInjector(plan)
            outcomes = [injector.on_wal_append() for __ in range(4)]
            assert outcomes == [
                WriteOutcome.OK,
                WriteOutcome.OK,
                WriteOutcome.CRASH_AFTER,
                WriteOutcome.OK,
            ]
            writes = [injector.on_page_write() for __ in range(3)]
            assert writes == [WriteOutcome.OK, WriteOutcome.CRASH_AFTER, WriteOutcome.OK]

    def test_torn_takes_priority_on_same_count(self):
        plan = FaultPlan.crash_point(wal_appends=1, torn_wal=1)
        assert CrashInjector(plan).on_wal_append() is WriteOutcome.TORN

    def test_counts_are_one_based(self):
        with pytest.raises(ValueError):
            FaultPlan.crash_point(wal_appends=0)
        with pytest.raises(ValueError):
            FaultPlan.crash_point(torn_page=-1)


# -- buffer pool: dirty tracking, flush-on-evict, no-steal -------------------


def tiny_pool(frames, store=None):
    store = store if store is not None else PageStore(page_size=512)
    config = StorageConfig(page_size=512, num_disks=1, buffer_pool_pages=frames)
    return store, BufferPool(config, store)


class TestDirtyTracking:
    def test_mark_and_clean(self):
        store, pool = tiny_pool(4)
        pid = store.allocate(object())
        assert not pool.is_dirty(pid)
        pool.mark_dirty(pid)
        assert pool.is_dirty(pid)
        assert pool.dirty_pages == {pid}
        pool.mark_clean(pid)
        assert not pool.is_dirty(pid)

    def test_flush_on_evict_calls_hook(self):
        store, pool = tiny_pool(2)
        pids = [store.allocate(object()) for __ in range(3)]
        flushed = []
        pool.flush_hook = flushed.append
        pool.access(pids[0])
        pool.mark_dirty(pids[0])
        pool.access(pids[1])
        pool.access(pids[2])  # evicts pids[0], which is dirty
        assert flushed == [pids[0]]
        assert pool.evict_flushes == 1
        assert not pool.is_dirty(pids[0])

    def test_eviction_without_hook_drops_dirt(self):
        store, pool = tiny_pool(1)
        pids = [store.allocate(object()) for __ in range(2)]
        pool.access(pids[0])
        pool.mark_dirty(pids[0])
        pool.access(pids[1])
        assert not pool.is_dirty(pids[0])
        assert pool.evict_flushes == 0

    def test_no_steal_page_is_not_evictable(self):
        store, pool = tiny_pool(1)
        pids = [store.allocate(object()) for __ in range(2)]
        pool.access(pids[0])
        pool.mark_dirty(pids[0], no_steal=True)
        with pytest.raises(BufferPoolExhausted):
            pool.access(pids[1])
        pool.release_no_steal(pids[0])
        pool.access(pids[1])  # now evictable
        assert pool.contains(pids[1])


# -- satellite regressions ---------------------------------------------------


class TestInvalidatePinLeak:
    def test_invalidate_resets_pin_count(self):
        # Regression: invalidate used to leave the frame's pin count
        # behind, so the (freed) frame stayed unevictable forever and a
        # 1-frame pool was permanently exhausted.
        store, pool = tiny_pool(1)
        pids = [store.allocate(object()) for __ in range(2)]
        with pool.pinned(pids[0]):
            pool.invalidate(pids[0])
        pool.access(pids[1])  # must not raise BufferPoolExhausted
        assert pool.contains(pids[1])

    def test_invalidate_drops_dirty_and_no_steal(self):
        store, pool = tiny_pool(2)
        pid = store.allocate(object())
        pool.access(pid)
        pool.mark_dirty(pid, no_steal=True)
        pool.invalidate(pid)
        assert not pool.is_dirty(pid)
        other = store.allocate(object())
        pool.access(other)  # frame reusable, no flush attempted


class TestCorruptPageMask:
    def test_double_corruption_still_detected(self):
        # Regression: a constant XOR mask made corrupt_page self-inverse —
        # two faults on the same page restored the original token and the
        # checksum passed again.
        store = PageStore(page_size=512)
        pid = store.allocate(object())
        store.corrupt_page(pid)
        assert not store.verify_checksum(pid)
        store.corrupt_page(pid)
        assert not store.verify_checksum(pid)

    def test_many_corruptions_never_cancel(self):
        store = PageStore(page_size=512)
        pid = store.allocate(object())
        for __ in range(16):
            store.corrupt_page(pid)
            assert not store.verify_checksum(pid)

    def test_scrub_heals(self):
        store = PageStore(page_size=512)
        pid = store.allocate(object())
        store.corrupt_page(pid)
        store.scrub(pid)
        assert store.verify_checksum(pid)


# -- WalManager protocol -----------------------------------------------------


class TestWalManager:
    def test_attach_snapshots_and_checkpoints(self):
        tree = small_tree()
        pages_before = set(tree.store.page_ids())
        wal = WalManager(tree)
        assert set(wal.durable_pages) == pages_before
        records = wal.log.records()
        assert [r.type for r in records] == [RecordType.CHECKPOINT]
        # The attach snapshot is not charged: the only disk time so far is
        # the checkpoint record's own log append.
        assert wal.log.write_us > 0
        assert wal.io_env.now == wal.log.write_us

    def test_transaction_logs_images_and_commit(self):
        tree = small_tree()
        wal = WalManager(tree)
        tree.insert(1, 2)
        records = wal.log.records()
        types = [r.type for r in records[1:]]  # skip the attach checkpoint
        assert types[0] is RecordType.BEGIN
        assert types[-1] is RecordType.COMMIT
        assert RecordType.PAGE_IMAGE in types
        meta = TreeMeta.unpack(records[-1].payload)
        assert meta.entries == tree.num_entries
        assert meta.root_pid == tree.root_pid

    def test_read_only_transaction_logs_nothing(self):
        tree = small_tree()
        wal = WalManager(tree)
        before = wal.log.appends
        with wal.transaction():
            tree.search(0)
        assert wal.log.appends == before
        assert wal.commits == 0

    def test_nested_transactions_join(self):
        tree = small_tree()
        wal = WalManager(tree)
        with wal.transaction():
            tree.insert(1, 2)
            tree.insert(3, 4)
        assert wal.commits == 1
        commits = [r for r in wal.log.records() if r.type is RecordType.COMMIT]
        assert len(commits) == 1

    def test_writes_outside_transaction_are_unlogged(self):
        tree = small_tree()
        wal = WalManager(tree)
        before = wal.log.appends
        tree.store.scrub(tree.root_pid)
        tree.store.mark_dirty(tree.root_pid)
        assert wal.log.appends == before

    def test_commit_releases_no_steal(self):
        tree = small_tree()
        wal = WalManager(tree)
        with wal.transaction() as txn:
            tree.insert(1, 2)
            assert txn.written
            for pid in txn.written:
                assert pid in tree.pool._no_steal
        for pid in txn.written:
            assert pid not in tree.pool._no_steal

    def test_checkpoint_flushes_dirty_pages(self):
        tree = small_tree()
        wal = WalManager(tree)
        tree.insert(1, 2)
        dirty = set(tree.pool.dirty_pages)
        assert dirty
        flushed = wal.checkpoint()
        assert flushed >= len(dirty)
        assert not tree.pool.dirty_pages
        assert wal.io_env.now > 0  # page forces are charged disk time
        assert wal.log.records()[-1].type is RecordType.CHECKPOINT

    def test_checkpoint_interval_auto_fires(self):
        tree = small_tree()
        wal = WalManager(tree, checkpoint_interval=5)
        for k in range(1, 25, 2):
            tree.insert(k, k + 1)
        assert wal.checkpoints == 12 // 5
        assert wal.commits == 12

    def test_checkpoint_inside_open_transaction_raises(self):
        tree = small_tree()
        wal = WalManager(tree)
        with wal.transaction():
            tree.insert(1, 2)
            with pytest.raises(RuntimeError):
                wal.checkpoint()

    def test_negative_checkpoint_interval_rejected(self):
        tree = small_tree()
        with pytest.raises(ValueError):
            WalManager(tree, checkpoint_interval=-1)

    def test_stats_and_crash_state(self):
        tree = small_tree()
        wal = WalManager(tree)
        tree.insert(1, 2)
        wal.checkpoint()
        stats = wal.stats()
        assert stats.commits == 1
        assert stats.wal_appends == wal.log.appends
        assert stats.checkpoints == 1
        assert stats.write_us == wal.io_env.now
        image = wal.crash_state()
        assert image.wal_data == wal.log.data
        assert set(image.pages) == set(wal.durable_pages)
        assert image.page_size == tree.env.page_size

    def test_detach_unhooks(self):
        tree = small_tree()
        wal = WalManager(tree)
        wal.detach()
        assert tree.store.write_observer is None
        assert tree.pool.flush_hook is None
        assert tree.env.wal is None
        before = wal.log.appends
        tree.insert(1, 2)  # no longer logged
        assert wal.log.appends == before
