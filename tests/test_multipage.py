"""Tests for the multipage-node trade-off experiment (paper Section 2.1)."""

import pytest

from repro.bench.multipage import (
    MultipageSearchModel,
    ablation_multipage_nodes,
    simulate_search_load,
)


class TestModelGeometry:
    def test_fanout_grows_with_node_size(self):
        one = MultipageSearchModel(num_keys=10_000_000, pages_per_node=1)
        four = MultipageSearchModel(num_keys=10_000_000, pages_per_node=4)
        assert four.node_fanout > 3 * one.node_fanout

    def test_levels_shrink_with_node_size(self):
        one = MultipageSearchModel(num_keys=10_000_000, pages_per_node=1)
        four = MultipageSearchModel(num_keys=10_000_000, pages_per_node=4)
        assert four.levels < one.levels

    def test_levels_for_known_geometry(self):
        # 16KB pages / 8B entries -> fan-out 2040; 10M keys need 3 levels.
        model = MultipageSearchModel(num_keys=10_000_000, pages_per_node=1)
        assert model.node_fanout == 2040
        assert model.levels == 3

    def test_total_nodes_counts_all_levels(self):
        model = MultipageSearchModel(num_keys=100_000, pages_per_node=1)
        leaves = -(-100_000 // model.node_fanout)
        assert model.total_nodes >= leaves + 1

    def test_single_key_tree(self):
        model = MultipageSearchModel(num_keys=1)
        assert model.levels == 1
        assert model.total_nodes == 1


class TestSimulation:
    def test_wide_nodes_cut_single_query_latency(self):
        narrow = MultipageSearchModel(num_keys=10_000_000, pages_per_node=1)
        wide = MultipageSearchModel(num_keys=10_000_000, pages_per_node=4)
        lat_narrow, __ = simulate_search_load(narrow, num_disks=10, concurrent_streams=1)
        lat_wide, __ = simulate_search_load(wide, num_disks=10, concurrent_streams=1)
        assert lat_wide < lat_narrow

    def test_wide_nodes_hurt_concurrent_throughput(self):
        narrow = MultipageSearchModel(num_keys=10_000_000, pages_per_node=1)
        wide = MultipageSearchModel(num_keys=10_000_000, pages_per_node=4)
        __, tp_narrow = simulate_search_load(
            narrow, num_disks=10, concurrent_streams=16, searches_per_stream=10
        )
        __, tp_wide = simulate_search_load(
            wide, num_disks=10, concurrent_streams=16, searches_per_stream=10
        )
        assert tp_narrow > 1.5 * tp_wide

    def test_concurrency_raises_throughput(self):
        model = MultipageSearchModel(num_keys=10_000_000, pages_per_node=1)
        __, tp_serial = simulate_search_load(model, num_disks=10, concurrent_streams=1)
        __, tp_parallel = simulate_search_load(
            model, num_disks=10, concurrent_streams=8, searches_per_stream=10
        )
        assert tp_parallel > 3 * tp_serial

    def test_deterministic_given_seed(self):
        model = MultipageSearchModel(num_keys=1_000_000, pages_per_node=2)
        a = simulate_search_load(model, num_disks=4, concurrent_streams=2, seed=5)
        b = simulate_search_load(model, num_disks=4, concurrent_streams=2, seed=5)
        assert a == b


def test_ablation_reproduces_the_papers_argument():
    result = ablation_multipage_nodes(
        num_keys=5_000_000, node_sizes=(1, 4), stream_counts=(1, 12), searches_per_stream=10
    )
    one_q = {r["pages_per_node"]: r for r in result.filter(streams=1)}
    oltp = {r["pages_per_node"]: r for r in result.filter(streams=12)}
    # Latency: wide nodes win the single-query race...
    assert one_q[4]["latency_ms"] <= one_q[1]["latency_ms"]
    # ...but lose the throughput race under concurrency (Section 2.1).
    assert oltp[1]["throughput_per_s"] > oltp[4]["throughput_per_s"]
