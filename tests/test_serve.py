"""Tests for the serving layer: admission, conservation, determinism, stats."""

import pytest

from repro.dbms.engine import MiniDbms
from repro.des import Environment
from repro.serve import (
    AdmissionController,
    AdmissionRejected,
    ClosedLoopLoadGenerator,
    DbmsServer,
    OpenLoopLoadGenerator,
)
from repro.serve.stats import SERVE_LATENCY_BOUNDS_US, ServerStats
from repro.storage.buffer import BufferPool, BufferPoolExhausted
from repro.storage.config import StorageConfig
from repro.workloads import OpMix


def small_db(num_rows=2_000, seed=7):
    return MiniDbms(num_rows=num_rows, num_disks=4, page_size=4096, seed=seed, mature=False)


# -- admission control -----------------------------------------------------


def holder(env, admission, name, order, hold_us=100.0, delay_us=0.0, priority=0):
    if delay_us:
        yield env.timeout(delay_us)
    try:
        ticket = yield from admission.admit(priority)
    except AdmissionRejected:
        order.append((name, "shed"))
        return
    order.append((name, "in"))
    yield env.timeout(hold_us)
    admission.release(ticket)


def test_admission_fifo_grant_order():
    env = Environment()
    admission = AdmissionController(env, max_concurrency=1, max_queue_depth=16)
    order = []
    # a takes the token at t=0; b,c,d queue in arrival order and must be
    # granted in exactly that order as the token is recycled.
    for i, name in enumerate("abcd"):
        env.process(holder(env, admission, name, order, hold_us=100.0, delay_us=i * 10.0))
    env.run()
    assert order == [("a", "in"), ("b", "in"), ("c", "in"), ("d", "in")]
    assert admission.admitted_count == 4
    assert admission.shed_count == 0
    assert admission.in_service == 0 and admission.queue_depth == 0


def test_admission_priority_grant_order():
    env = Environment()
    admission = AdmissionController(env, max_concurrency=1, max_queue_depth=16, mode="priority")
    order = []
    env.process(holder(env, admission, "first", order, hold_us=100.0))
    # All three wait while "first" holds the token; the lowest priority
    # value must win regardless of arrival order (10, 30, 20 us).
    env.process(holder(env, admission, "p5", order, delay_us=10.0, priority=5))
    env.process(holder(env, admission, "p1", order, delay_us=30.0, priority=1))
    env.process(holder(env, admission, "p3", order, delay_us=20.0, priority=3))
    env.run()
    assert [name for name, __ in order] == ["first", "p1", "p3", "p5"]


def test_admission_sheds_past_queue_bound():
    env = Environment()
    admission = AdmissionController(env, max_concurrency=1, max_queue_depth=2)
    order = []
    # One in service + two queued = at the bound; the 4th and 5th shed.
    for i, name in enumerate("abcde"):
        env.process(
            holder(env, admission, name, order, hold_us=1000.0, delay_us=i * 1.0)
        )
    env.run()
    assert order[:3] == [("a", "in"), ("d", "shed"), ("e", "shed")]
    assert admission.shed_count == 2
    assert admission.admitted_count == 3


def test_admission_queue_wait_accounting():
    env = Environment()
    admission = AdmissionController(env, max_concurrency=1, max_queue_depth=4)
    waits = {}

    def client(name, delay_us):
        yield env.timeout(delay_us)
        ticket = yield from admission.admit()
        waits[name] = ticket.queue_wait_us
        yield env.timeout(100.0)
        admission.release(ticket)

    env.process(client("a", 0.0))
    env.process(client("b", 40.0))
    env.run()
    # a is granted instantly; b arrives at t=40 and waits until a's release
    # at t=100.
    assert waits["a"] == 0.0
    assert waits["b"] == pytest.approx(60.0)


# -- latency histogram percentiles ----------------------------------------


def test_latency_percentiles_match_hand_computed_distribution():
    stats = ServerStats()
    # One sample exactly on each of the first ten bucket bounds: with 10
    # samples, quantile(q) is the upper bound of the bucket holding rank
    # ceil(10q), i.e. bounds[ceil(10q) - 1].
    for bound in SERVE_LATENCY_BOUNDS_US[:10]:
        stats.complete("lookup", bound)
    got = stats.percentiles_us("lookup")
    assert got["p50"] == SERVE_LATENCY_BOUNDS_US[4]
    assert got["p95"] == SERVE_LATENCY_BOUNDS_US[9]
    assert got["p99"] == SERVE_LATENCY_BOUNDS_US[9]
    assert got["p999"] == SERVE_LATENCY_BOUNDS_US[9]


def test_latency_percentiles_skewed_distribution():
    stats = ServerStats()
    # 90 fast ops in the first bucket, 10 slow ones in the eleventh: the
    # median sits in the fast bucket, the tail percentiles in the slow one.
    for __ in range(90):
        stats.complete("scan", SERVE_LATENCY_BOUNDS_US[0])
    for __ in range(10):
        stats.complete("scan", SERVE_LATENCY_BOUNDS_US[10])
    got = stats.percentiles_us("scan")
    assert got["p50"] == SERVE_LATENCY_BOUNDS_US[0]
    assert got["p95"] == SERVE_LATENCY_BOUNDS_US[10]
    assert got["p99"] == SERVE_LATENCY_BOUNDS_US[10]
    # The combined histogram saw the same 100 samples.
    assert stats.latency_histogram("all").count == 100
    assert stats.percentiles_us("all") == got


# -- conservation ----------------------------------------------------------


def test_closed_loop_conservation_and_totals():
    db = small_db()
    server = DbmsServer(db, max_concurrency=4, queue_depth=8, pool_frames=32, seed=3)
    generator = ClosedLoopLoadGenerator(
        server, clients=6, ops_per_client=5, think_time_us=2_000.0, seed=3
    )
    stats = generator.run()
    assert stats.issued == 6 * 5
    assert stats.in_flight == 0
    assert stats.conserved()
    assert stats.issued == stats.completed + stats.shed_count + stats.failed
    # Closed loop with 6 clients over 4 tokens + depth-8 queue never sheds.
    assert stats.shed_count == 0 and stats.failed == 0
    assert all(request.outcome == "ok" for request in server.requests)


def test_open_loop_conservation_holds_mid_run():
    db = small_db()
    server = DbmsServer(db, max_concurrency=2, queue_depth=16, pool_frames=32, seed=5)
    generator = OpenLoopLoadGenerator(server, rate_ops_s=2_000, duration_s=0.2, seed=5)
    generator.start()
    # Freeze mid-traffic: requests must be genuinely in flight and the
    # identity must hold at that instant, not just after the drain.
    server.env.run(until=50_000.0)
    assert server.stats.in_flight > 0
    assert server.stats.conserved()
    server.env.run()
    assert server.stats.in_flight == 0
    assert server.stats.conserved()
    assert server.stats.issued == generator.issued


def test_deadline_timeouts_do_not_break_conservation():
    db = small_db()
    server = DbmsServer(
        db, max_concurrency=2, queue_depth=32, pool_frames=32,
        deadline_us=4_000.0, seed=9,
    )
    generator = OpenLoopLoadGenerator(server, rate_ops_s=1_500, duration_s=0.2, seed=9)
    stats = generator.run()
    assert stats.timeouts > 0
    assert stats.conserved() and stats.in_flight == 0
    timed_out = [request for request in server.requests if request.timed_out]
    assert len(timed_out) == stats.timeouts
    # The server finishes abandoned ops: they are counted as completed.
    assert all(request.outcome in ("ok", "timeout") for request in timed_out)


def test_open_loop_sheds_under_overload():
    db = small_db()
    server = DbmsServer(db, max_concurrency=2, queue_depth=4, pool_frames=32, seed=1)
    generator = OpenLoopLoadGenerator(server, rate_ops_s=4_000, duration_s=0.2, seed=1)
    stats = generator.run()
    assert stats.shed_count > 0
    assert stats.conserved()
    shed = [request for request in server.requests if request.outcome == "shed"]
    assert len(shed) == stats.shed_count
    assert all(isinstance(request.error, AdmissionRejected) for request in shed)


# -- determinism -----------------------------------------------------------


def run_once(seed):
    db = small_db(seed=11)
    server = DbmsServer(db, max_concurrency=4, queue_depth=8, pool_frames=32, seed=seed)
    generator = OpenLoopLoadGenerator(server, rate_ops_s=1_200, duration_s=0.25, seed=seed)
    stats = generator.run()
    outcomes = [
        (request.rid, request.kind, request.outcome, request.latency_us)
        for request in server.requests
    ]
    return stats.snapshot(), outcomes


def test_same_seed_runs_are_identical():
    assert run_once(4) == run_once(4)


def test_different_seeds_diverge():
    assert run_once(4)[1] != run_once(5)[1]


# -- serving ops touch real data ------------------------------------------


def test_served_ops_return_real_rows():
    db = small_db()
    server = DbmsServer(db, max_concurrency=4, queue_depth=8, pool_frames=32)
    keys = db._workload.keys
    lookup = server.make_request(("lookup", int(keys[10])))
    scan = server.make_request(("scan", int(keys[0]), int(keys[40])))
    fresh = int(keys[-1]) + 2  # past the stored universe, as FreshKeys would pick
    insert = server.make_request(("insert", fresh))
    for request in (lookup, scan, insert):
        server.submit(request)
    server.run()
    assert lookup.outcome == "ok" and lookup.rows == 1
    assert scan.outcome == "ok" and scan.rows == 41
    assert insert.outcome == "ok" and insert.rows == 1
    # The freshly inserted key is immediately visible to a new lookup.
    check = server.make_request(("lookup", fresh))
    server.submit(check)
    server.run()
    assert check.outcome == "ok" and check.rows == 1


# -- buffer pool exhaustion diagnostics ------------------------------------


def test_buffer_pool_exhausted_names_pin_holders():
    db = small_db()
    config = StorageConfig(
        page_size=db.page_size, num_disks=db.num_disks,
        buffer_pool_pages=2, disk=db.disk_params,
    )
    pool = BufferPool(config, db.store)
    __, pids = db.leaf_key_map()
    with pool.pinned(int(pids[0]), owner="session-a#1"):
        with pool.pinned(int(pids[1]), owner="session-b#2"):
            with pytest.raises(BufferPoolExhausted) as excinfo:
                pool.access(int(pids[2]))
    exc = excinfo.value
    assert exc.pin_holders[int(pids[0])] == ("session-a#1",)
    assert exc.pin_holders[int(pids[1])] == ("session-b#2",)
    assert "session-a#1" in str(exc) and "session-b#2" in str(exc)
    # Both pins released: the access now succeeds.
    pool.access(int(pids[2]))


# -- failure paths keep the accounting closed ------------------------------


def test_unknown_op_kind_fails_closed_and_conserves():
    # Regression: an exception outside the expected fault types (here a
    # ValueError from an unknown op kind) used to escape _execute, killing
    # the worker with the request still "pending" — conservation broke and
    # the admission token leaked.  Such errors must land in "failed".
    db = small_db()
    server = DbmsServer(db, max_concurrency=2, queue_depth=4, pool_frames=32)
    bad = server.make_request(("frobnicate", 123))
    event = server.submit(bad)
    server.env.run(until=event)
    assert bad.outcome == "failed"
    assert isinstance(bad.error, ValueError)
    assert server.stats.failed == 1
    assert server.stats.conserved() and server.stats.in_flight == 0
    # The service token came back: a normal request still gets through.
    good = server.make_request(("lookup", int(db._workload.keys[0])))
    server.submit(good)
    server.run()
    assert good.outcome == "ok"
    assert server.stats.conserved()


# -- ServerStats under mixed outcomes --------------------------------------


def _identity_holds(stats):
    return stats.issued == (
        stats.completed + stats.shed_count + stats.failed + stats.in_flight
    )


def test_stats_conserved_through_every_mixed_outcome_step():
    # Property-style: a seeded random walk over the recording API, with the
    # conservation identity checked after every single event — not just at
    # the drain.  Timeouts are deliberate no-ops on the identity (the
    # client gave up; the server still finishes and records the terminal
    # outcome), so a "timeout then ok" flip must not double-count.
    import random as _random

    rng = _random.Random(1234)
    stats = ServerStats()
    open_requests = []
    for step in range(500):
        if open_requests and rng.random() < 0.5:
            kind = rng.choice(["lookup", "scan", "insert"])
            terminal = rng.choice(["ok", "shed", "fail", "timeout-then-ok"])
            open_requests.pop()
            if terminal == "ok":
                stats.complete(kind, rng.uniform(100.0, 50_000.0))
            elif terminal == "shed":
                stats.shed()
            elif terminal == "fail":
                stats.fail(kind)
            else:
                stats.timeout()  # client abandons...
                stats.complete(kind, rng.uniform(100.0, 50_000.0))  # ...server finishes
        else:
            stats.issue()
            open_requests.append(step)
        assert _identity_holds(stats), f"identity broke at step {step}"
    assert stats.in_flight == len(open_requests)
    # Drain the stragglers; the identity must close exactly.
    while open_requests:
        open_requests.pop()
        stats.fail("lookup")
        assert _identity_holds(stats)
    assert stats.in_flight == 0
    assert stats.issued == stats.completed + stats.shed_count + stats.failed
    assert stats.timeouts <= stats.completed  # every timeout later completed


def test_stats_shed_then_retry_counts_two_issues():
    # A client retry of a shed request is a brand-new request: both issues
    # count, and the identity holds at every intermediate instant.
    stats = ServerStats()
    stats.issue()
    stats.shed()
    assert _identity_holds(stats)
    stats.issue()  # the retry
    assert stats.in_flight == 1 and _identity_holds(stats)
    stats.complete("lookup", 1_500.0)
    assert _identity_holds(stats)
    assert stats.issued == 2 and stats.completed == 1 and stats.shed_count == 1


def test_stats_listener_sees_terminal_outcomes_only():
    seen = []
    stats = ServerStats()
    stats.listeners.append(lambda kind, latency, ok: seen.append((kind, latency, ok)))
    stats.issue()
    stats.timeout()  # not terminal: the server is still working
    assert seen == []
    stats.complete("scan", 2_000.0, rows=10)
    stats.issue()
    stats.fail("insert")
    assert seen == [("scan", 2_000.0, True), ("insert", None, False)]
