"""Tests for the mini DBMS (heap table + index-only scans)."""

import pytest

from repro.dbms import DEFAULT_SCHEMA, HeapTable, MiniDbms
from repro.storage import PageStore


class TestHeapTable:
    def test_schema_row_size_matches_paper(self):
        # (int, int, char(20), int, char(512)) = 544 bytes.
        assert DEFAULT_SCHEMA.row_bytes == 544

    def test_insert_and_fetch(self):
        store = PageStore(16384)
        table = HeapTable(store)
        tids = [table.insert_row(k, k * 2, k * 3) for k in range(100)]
        assert table.fetch(tids[42]) == (42, 84, 126)
        assert table.num_rows == 100

    def test_rows_per_page(self):
        store = PageStore(16384)
        table = HeapTable(store)
        assert table.rows_per_page == (16384 - 64) // 544

    def test_pages_allocated_on_demand(self):
        store = PageStore(16384)
        table = HeapTable(store)
        per_page = table.rows_per_page
        for k in range(per_page + 1):
            table.insert_row(k, 0, 0)
        assert table.num_pages == 2

    def test_fetch_invalid_tid(self):
        store = PageStore(16384)
        table = HeapTable(store)
        table.insert_row(1, 2, 3)
        with pytest.raises(KeyError):
            table.fetch(9999)

    def test_rows_iterator_matches_inserts(self):
        store = PageStore(16384)
        table = HeapTable(store)
        for k in range(50):
            table.insert_row(k, k + 1, k + 2)
        rows = list(table.rows())
        assert len(rows) == 50
        assert rows[10] == (10, 10, 11, 12)


class TestMiniDbms:
    @pytest.fixture(scope="class")
    def db(self):
        return MiniDbms(num_rows=20_000, num_disks=8, seed=3)

    def test_count_star_counts_every_row(self, db):
        stats = db.count_star()
        assert stats.row_count == 20_000

    def test_in_memory_floor_is_fastest(self, db):
        plain = db.count_star(prefetchers=0)
        warm = db.count_star(in_memory=True)
        assert warm.elapsed_us < plain.elapsed_us
        assert warm.disk_reads == 0

    def test_prefetchers_speed_up_scan(self, db):
        plain = db.count_star(prefetchers=0)
        fetched = db.count_star(prefetchers=8)
        assert fetched.elapsed_us < plain.elapsed_us
        assert fetched.row_count == plain.row_count

    def test_more_prefetchers_monotone_improvement(self, db):
        times = [db.count_star(prefetchers=n).elapsed_us for n in (1, 4, 8)]
        assert times[2] <= times[0]

    def test_smp_parallelism_speeds_up(self, db):
        serial = db.count_star(smp_degree=1, prefetchers=4)
        parallel = db.count_star(smp_degree=4, prefetchers=4)
        assert parallel.elapsed_us < serial.elapsed_us
        assert parallel.row_count == serial.row_count

    def test_prefetch_approaches_in_memory(self, db):
        warm = db.count_star(in_memory=True, smp_degree=2)
        fetched = db.count_star(prefetchers=12, smp_degree=2)
        plain = db.count_star(prefetchers=0, smp_degree=2)
        # The prefetched scan lands much closer to the floor than to plain.
        assert fetched.elapsed_us - warm.elapsed_us < (plain.elapsed_us - warm.elapsed_us) / 2

    def test_lookup_through_index(self, db):
        workload_key = int(db._workload.keys[123])
        row = db.lookup(workload_key)
        assert row is not None
        assert row[0] == workload_key

    def test_invalid_parameters(self, db):
        with pytest.raises(ValueError):
            db.count_star(smp_degree=0)
        with pytest.raises(ValueError):
            db.count_star(prefetchers=-1)


class TestIndexKinds:
    @pytest.mark.parametrize("kind", ["disk", "micro", "fp-disk", "fp-cache"])
    def test_count_star_correct_with_any_index(self, kind):
        db = MiniDbms(num_rows=5000, num_disks=4, seed=2, mature=False, index_kind=kind)
        stats = db.count_star(smp_degree=2, prefetchers=2)
        assert stats.row_count == 5000

    def test_standard_btree_also_benefits_from_prefetchers(self):
        """The paper's DB2 experiment used standard B+-Trees (Section 4.3.3)."""
        db = MiniDbms(num_rows=20_000, num_disks=8, seed=2, index_kind="disk", page_size=4096)
        plain = db.count_star(prefetchers=0)
        fetched = db.count_star(prefetchers=8)
        assert fetched.elapsed_us < plain.elapsed_us

    def test_unknown_index_kind_rejected(self):
        with pytest.raises(ValueError):
            MiniDbms(num_rows=100, index_kind="btree-9000")
