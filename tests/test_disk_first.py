"""Tests for the disk-first fpB+-Tree."""

import numpy as np
import pytest

from repro.baselines import DiskBPlusTree
from repro.btree.context import TreeEnvironment
from repro.core import DiskFirstFpTree, LineAllocator, optimize_disk_first
from repro.core.inpage import LEAF, NONLEAF
from repro.mem import MemorySystem

from index_contract import IndexContract, dense_keys


class TestDiskFirstContract(IndexContract):
    def make_index(self, **kwargs):
        kwargs.setdefault("page_size", 1024)
        kwargs.setdefault("buffer_pages", 512)
        return DiskFirstFpTree(TreeEnvironment(**kwargs))


class TestLineAllocator:
    def test_alloc_and_free(self):
        alloc = LineAllocator(16)
        line = alloc.alloc(3)
        assert line == 1  # line 0 reserved for the header
        assert alloc.free_lines == 16 - 1 - 3
        alloc.free(line, 3)
        assert alloc.free_lines == 15

    def test_contiguity_requirement(self):
        alloc = LineAllocator(8)
        a = alloc.alloc(3)  # lines 1-3
        b = alloc.alloc(3)  # lines 4-6
        assert a is not None and b is not None
        alloc.free(a, 3)
        # 4 contiguous lines are not available (1-3 free, 7 free).
        assert alloc.alloc(4) is None
        assert alloc.alloc(3) is not None

    def test_hint_is_respected_when_possible(self):
        alloc = LineAllocator(32)
        line = alloc.alloc(2, hint=10)
        assert line == 10

    def test_hint_wraps_around(self):
        alloc = LineAllocator(8)
        line = alloc.alloc(3, hint=7)  # no room at 7; wraps to 1
        assert line == 1

    def test_double_free_rejected(self):
        alloc = LineAllocator(8)
        line = alloc.alloc(2)
        alloc.free(line, 2)
        with pytest.raises(ValueError):
            alloc.free(line, 2)

    def test_cannot_free_header(self):
        alloc = LineAllocator(8)
        with pytest.raises(ValueError):
            alloc.free(0, 1)

    def test_clear(self):
        alloc = LineAllocator(8)
        alloc.alloc(5)
        alloc.clear()
        assert alloc.free_lines == 7


class TestDiskFirstStructure:
    def make_tree(self, page_size=1024, **kw):
        return DiskFirstFpTree(TreeEnvironment(page_size=page_size, buffer_pages=512, **kw))

    def test_page_fanout_matches_optimizer(self):
        for page_size in (4096, 8192, 16384):
            widths = optimize_disk_first(page_size)
            tree = DiskFirstFpTree(TreeEnvironment(page_size=page_size, buffer_pages=256))
            assert tree.layout.page_fanout == widths.page_fanout

    def test_bulkload_builds_inpage_trees(self):
        tree = self.make_tree(page_size=4096)
        n = 5 * tree.layout.page_fanout
        keys = dense_keys(n)
        tree.bulkload(keys, keys)
        root_page = tree.store.page(tree.root_pid)
        assert root_page.level >= 1
        # Leaf pages must have multi-node in-page trees.
        leaf = tree.store.page(tree.first_leaf_pid)
        kinds = {node.kind for node in leaf.nodes.values()}
        assert kinds == {LEAF, NONLEAF}
        tree.validate()

    def test_leaf_page_entries_spread_evenly(self):
        tree = self.make_tree(page_size=4096)
        keys = dense_keys(tree.layout.page_fanout)  # exactly one full page
        tree.bulkload(keys, keys, fill=0.7)
        for pid in tree.leaf_page_ids():
            page = tree.store.page(pid)
            counts = [n.count for n in page.leaf_nodes_in_order() if n.count]
            assert max(counts) - min(counts) <= 1

    def test_interior_pages_packed(self):
        tree = self.make_tree(page_size=1024)
        keys = dense_keys(30000)
        tree.bulkload(keys, keys)
        root_page = tree.store.page(tree.root_pid)
        nodes = root_page.leaf_nodes_in_order()
        # All but the last in-page leaf node of a packed page are full.
        for node in nodes[:-1]:
            assert node.count == node.capacity

    def test_inserts_into_fresh_tree_split_nodes_not_pages(self):
        """Growing from empty: in-page node splits happen long before any
        page split (free line slots absorb growth)."""
        tree = self.make_tree(page_size=4096)
        for key in range(200):
            tree.insert(key, key)
        assert tree.node_splits > 0
        assert tree.page_splits == 0
        tree.validate()

    def test_bulkloaded_leaf_pages_reorganize_not_node_split(self):
        """Bulkload allocates all in-page leaf nodes, so a full node in a
        non-full page reorganizes instead of splitting (Section 3.1.2)."""
        tree = self.make_tree(page_size=4096)
        keys = dense_keys(2 * tree.layout.page_fanout)
        tree.bulkload(keys, keys, fill=0.7)
        for key in range(2, 3000, 6):
            tree.insert(key, key)
        assert tree.reorganizations > 0
        tree.validate()

    def test_full_tree_insertion_triggers_page_splits(self):
        tree = self.make_tree(page_size=1024)
        keys = dense_keys(3000)
        tree.bulkload(keys, keys, fill=1.0)
        rng = np.random.default_rng(3)
        for key in rng.integers(1, 9000, size=500):
            tree.insert(int(key), 1)
        assert tree.page_splits > 0
        tree.validate()

    def test_reorganize_avoids_page_split(self):
        """A page with free fan-out but fragmented lines reorganizes in place."""
        tree = self.make_tree(page_size=4096)
        keys = dense_keys(tree.layout.page_fanout // 2)
        tree.bulkload(keys, keys, fill=0.5)
        rng = np.random.default_rng(9)
        pages_before = tree.num_pages
        # Hammer one region to split nodes until lines run out.
        for key in sorted(rng.choice(np.arange(2, keys[-1]), size=600, replace=False)):
            key = int(key)
            if (key - 10) % 3 != 0:
                tree.insert(key, key)
        tree.validate()

    def test_jump_pointer_array_lists_all_leaves(self):
        tree = self.make_tree(page_size=1024)
        keys = dense_keys(20000)
        tree.bulkload(keys, keys)
        assert tree.height >= 2
        assert tree.leaf_pids_via_jump_pointers() == tree.leaf_page_ids()

    def test_jump_pointers_survive_updates(self):
        tree = self.make_tree(page_size=1024)
        keys = dense_keys(5000)
        tree.bulkload(keys, keys)
        rng = np.random.default_rng(4)
        for key in rng.integers(1, 20000, size=800):
            tree.insert(int(key), 2)
        assert tree.leaf_pids_via_jump_pointers() == tree.leaf_page_ids()
        tree.validate()

    def test_root_placement_varies_when_pages_have_slack(self):
        # Sparse pages have line-slot slack, so top-level node placement is
        # staggered by page id to avoid cache conflicts (Section 4.1).
        trees = []
        lines = set()
        for __ in range(6):
            tree = self.make_tree(page_size=4096)
            for key in range(40):
                tree.insert(key, key)
            # Force a rebuild so the stagger logic runs with this page id.
            pid = tree.root_pid
            page = tree.store.page(pid)
            import numpy as np

            keys, ptrs = tree._collect_entries(page)
            tree._rebuild_page(pid, page, keys, ptrs, spread=True)
            lines.add((pid, page.root_line))
            trees.append(tree)
        hints = {tree.layout.root_hint(p) for p in range(8)}
        assert len(hints) > 1  # the hint function itself varies

    def test_stagger_never_breaks_full_pages(self):
        tree = self.make_tree(page_size=4096)
        keys = dense_keys(10 * tree.layout.page_fanout)
        tree.bulkload(keys, keys, fill=1.0)
        tree.validate()


class TestDiskFirstCacheBehaviour:
    def build_pair(self, n=60000, page_size=16384):
        mem = MemorySystem()
        fp = DiskFirstFpTree(TreeEnvironment(page_size=page_size, mem=mem, buffer_pages=1024))
        disk = DiskBPlusTree(TreeEnvironment(page_size=page_size, mem=mem, buffer_pages=1024))
        keys = dense_keys(n)
        with mem.paused():
            fp.bulkload(keys, keys)
            disk.bulkload(keys, keys)
        return fp, disk, mem, keys

    def measure(self, fn, mem, items):
        mem.clear_caches()
        with mem.measure() as phase:
            for item in items:
                fn(item)
        return phase

    def test_search_beats_disk_optimized(self):
        """Figure 10's direction: fpB+-Tree search is faster."""
        fp, disk, mem, keys = self.build_pair()
        rng = np.random.default_rng(1)
        picks = [int(k) for k in rng.choice(keys, size=80)]
        fp_phase = self.measure(fp.search, mem, picks)
        disk_phase = self.measure(disk.search, mem, picks)
        assert fp_phase.total_cycles < disk_phase.total_cycles

    def test_insertion_much_faster_when_not_splitting(self):
        """Figure 13's direction: ~10x+ win from small-node data movement."""
        fp, disk, mem, keys = self.build_pair(page_size=16384)
        # 70%-full trees: no page splits, data movement dominates.
        mem2 = MemorySystem()
        fp2 = DiskFirstFpTree(TreeEnvironment(page_size=16384, mem=mem2, buffer_pages=1024))
        disk2 = DiskBPlusTree(TreeEnvironment(page_size=16384, mem=mem2, buffer_pages=1024))
        with mem2.paused():
            fp2.bulkload(keys, keys, fill=0.7)
            disk2.bulkload(keys, keys, fill=0.7)
        rng = np.random.default_rng(2)
        picks = [int(k) + 1 for k in rng.choice(keys, size=60)]
        fp_phase = self.measure(lambda k: fp2.insert(k, 1), mem2, picks)
        disk_phase = self.measure(lambda k: disk2.insert(k, 1), mem2, picks)
        assert disk_phase.total_cycles > 4 * fp_phase.total_cycles

    def test_range_scan_beats_disk_optimized(self):
        """Figure 15's direction: prefetched leaf nodes win."""
        fp, disk, mem, keys = self.build_pair()
        lo, hi = keys[1000], keys[50000]
        mem.clear_caches()
        with mem.measure() as fp_phase:
            fp_result = fp.range_scan(lo, hi)
        mem.clear_caches()
        with mem.measure() as disk_phase:
            disk_result = disk.range_scan(lo, hi)
        assert fp_result == disk_result
        assert fp_phase.total_cycles < disk_phase.total_cycles

    def test_search_uses_prefetch(self):
        fp, __, mem, keys = self.build_pair(n=5000)
        mem.clear_caches()
        with mem.measure() as phase:
            fp.search(keys[42])
        assert phase.prefetches_issued > 0
