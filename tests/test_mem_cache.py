"""Unit tests for the set-associative cache model."""

import pytest

from repro.mem import Cache


def test_miss_then_hit():
    cache = Cache(size_bytes=1024, line_size=64, associativity=2)
    assert not cache.lookup(3)
    cache.insert(3)
    assert cache.lookup(3)
    assert cache.hits == 1
    assert cache.misses == 1


def test_lru_eviction_within_set():
    # 2 sets, 2-way: lines with the same parity map to the same set.
    cache = Cache(size_bytes=256, line_size=64, associativity=2)
    assert cache.num_sets == 2
    cache.insert(0)
    cache.insert(2)
    victim = cache.insert(4)  # set 0 full -> evict LRU (line 0)
    assert victim == 0
    assert not cache.contains(0)
    assert cache.contains(2)
    assert cache.contains(4)


def test_lookup_refreshes_lru_order():
    cache = Cache(size_bytes=256, line_size=64, associativity=2)
    cache.insert(0)
    cache.insert(2)
    cache.lookup(0)  # 0 becomes MRU, so 2 is the next victim
    victim = cache.insert(4)
    assert victim == 2
    assert cache.contains(0)


def test_direct_mapped_conflicts():
    cache = Cache(size_bytes=256, line_size=64, associativity=1)
    assert cache.num_sets == 4
    cache.insert(1)
    victim = cache.insert(5)  # 1 and 5 conflict in a 4-set direct-mapped cache
    assert victim == 1
    assert cache.contains(5)


def test_insert_existing_line_is_not_eviction():
    cache = Cache(size_bytes=256, line_size=64, associativity=2)
    cache.insert(0)
    assert cache.insert(0) is None
    assert cache.resident_lines() == 1


def test_contains_does_not_count():
    cache = Cache(size_bytes=256, line_size=64, associativity=2)
    cache.contains(7)
    assert cache.hits == 0
    assert cache.misses == 0


def test_invalidate():
    cache = Cache(size_bytes=256, line_size=64, associativity=2)
    cache.insert(9)
    assert cache.invalidate(9)
    assert not cache.invalidate(9)
    assert not cache.contains(9)


def test_clear_preserves_counters():
    cache = Cache(size_bytes=256, line_size=64, associativity=2)
    cache.lookup(1)
    cache.insert(1)
    cache.clear()
    assert cache.resident_lines() == 0
    assert cache.misses == 1


def test_invalid_geometry_rejected():
    with pytest.raises(ValueError):
        Cache(size_bytes=100, line_size=64, associativity=2)
    with pytest.raises(ValueError):
        Cache(size_bytes=256, line_size=64, associativity=0)


def test_full_capacity():
    cache = Cache(size_bytes=64 * 16, line_size=64, associativity=4)
    for line in range(16):
        cache.insert(line)
    assert cache.resident_lines() == 16
    for line in range(16):
        assert cache.contains(line)
