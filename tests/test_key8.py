"""8-byte-key support across all index structures.

The paper's experiments use 4-byte keys; results for larger keys are in the
technical report.  This module verifies every structure operates correctly
with 8-byte keys and that layouts/optimizers adapt their capacities.
"""

import numpy as np
import pytest

from repro.baselines import DiskBPlusTree, MicroIndexTree, PrefetchingBPlusTree
from repro.btree import KEY8
from repro.btree.context import TreeEnvironment
from repro.core import (
    CacheFirstFpTree,
    DiskFirstFpTree,
    optimize_cache_first,
    optimize_disk_first,
)

BIG = 1 << 45  # comfortably beyond 32-bit key space

FACTORIES = {
    "disk": lambda: DiskBPlusTree(TreeEnvironment(page_size=2048, keyspec=KEY8, buffer_pages=256)),
    "micro": lambda: MicroIndexTree(TreeEnvironment(page_size=2048, keyspec=KEY8, buffer_pages=256)),
    "fp-disk": lambda: DiskFirstFpTree(TreeEnvironment(page_size=2048, keyspec=KEY8, buffer_pages=256)),
    "fp-cache": lambda: CacheFirstFpTree(
        TreeEnvironment(page_size=2048, keyspec=KEY8, buffer_pages=256), num_keys_hint=10_000
    ),
    "pbtree": lambda: PrefetchingBPlusTree(keyspec=KEY8),
}


@pytest.mark.parametrize("kind", sorted(FACTORIES))
def test_key8_bulkload_and_search(kind):
    tree = FACTORIES[kind]()
    keys = [BIG + i * 1000 for i in range(3000)]
    tids = list(range(3000))
    tree.bulkload(keys, tids)
    assert tree.search(BIG + 777_000) == 777
    assert tree.search(BIG + 777_001) is None
    tree.validate()


@pytest.mark.parametrize("kind", sorted(FACTORIES))
def test_key8_updates(kind):
    tree = FACTORIES[kind]()
    rng = np.random.default_rng(4)
    reference = {}
    for value in rng.integers(0, 1 << 50, size=2000):
        key = int(value)
        if key not in reference:
            tree.insert(key, key % 1_000_000)
            reference[key] = key % 1_000_000
    for key in list(reference)[::5]:
        assert tree.delete(key)
        del reference[key]
    assert tree.num_entries == len(reference)
    for key, tid in list(reference.items())[::37]:
        assert tree.search(key) == tid
    tree.validate()


@pytest.mark.parametrize("kind", sorted(FACTORIES))
def test_key8_range_scan(kind):
    tree = FACTORIES[kind]()
    keys = [BIG + i * 10 for i in range(2000)]
    tree.bulkload(keys, [1] * 2000)
    result = tree.range_scan(BIG + 5000, BIG + 9990)
    assert result.count == 500


def test_key8_rejects_overflowing_keys_on_key4_tree():
    tree = DiskBPlusTree(TreeEnvironment(page_size=2048, buffer_pages=64))
    with pytest.raises(ValueError):
        tree.bulkload([BIG], [1])


def test_key8_optimizer_reduces_capacities():
    narrow = optimize_disk_first(16384, key_size=4)
    wide = optimize_disk_first(16384, key_size=8)
    assert wide.page_fanout < narrow.page_fanout
    narrow_cf = optimize_cache_first(16384, key_size=4)
    wide_cf = optimize_cache_first(16384, key_size=8)
    assert wide_cf.leaf_capacity < narrow_cf.leaf_capacity


def test_key8_layout_capacity_accounts_for_width():
    tree = FACTORIES["fp-disk"]()
    layout = tree.layout
    nonleaf_bytes = layout.widths.nonleaf_bytes
    assert layout.nonleaf_capacity == (nonleaf_bytes - 4) // (8 + 2)
