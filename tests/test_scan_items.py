"""Tests for the scan_items cursor API."""

import pytest

from repro import (
    CacheFirstFpTree,
    DiskBPlusTree,
    DiskFirstFpTree,
    MicroIndexTree,
    PrefetchingBPlusTree,
    TreeEnvironment,
)

FACTORIES = {
    "disk": lambda: DiskBPlusTree(TreeEnvironment(page_size=1024, buffer_pages=256)),
    "micro": lambda: MicroIndexTree(TreeEnvironment(page_size=1024, buffer_pages=256)),
    "fp-disk": lambda: DiskFirstFpTree(TreeEnvironment(page_size=1024, buffer_pages=256)),
    "fp-cache": lambda: CacheFirstFpTree(
        TreeEnvironment(page_size=1024, buffer_pages=256), num_keys_hint=10_000
    ),
    "pbtree": lambda: PrefetchingBPlusTree(),
}


def loaded(kind, n=3000):
    tree = FACTORIES[kind]()
    keys = list(range(10, 10 + 3 * n, 3))
    tree.bulkload(keys, [k + 1 for k in keys], fill=0.9)
    return tree, keys


@pytest.mark.parametrize("kind", sorted(FACTORIES))
def test_scan_items_matches_reference(kind):
    tree, keys = loaded(kind)
    lo, hi = keys[100], keys[900]
    expected = [(k, k + 1) for k in keys if lo <= k <= hi]
    assert list(tree.scan_items(lo, hi)) == expected


@pytest.mark.parametrize("kind", sorted(FACTORIES))
def test_scan_items_empty_and_inverted(kind):
    tree, keys = loaded(kind, n=200)
    assert list(tree.scan_items(keys[5], keys[2])) == []
    assert list(tree.scan_items(0, keys[0] - 1)) == []
    assert list(tree.scan_items(keys[-1] + 1, keys[-1] + 50)) == []


@pytest.mark.parametrize("kind", sorted(FACTORIES))
def test_scan_items_agrees_with_range_scan(kind):
    tree, keys = loaded(kind, n=1000)
    lo, hi = keys[50], keys[800]
    entries = list(tree.scan_items(lo, hi))
    result = tree.range_scan(lo, hi)
    assert len(entries) == result.count
    assert sum(tid for __, tid in entries) == result.tid_sum


def test_disk_cursor_catches_boundary_duplicates():
    tree = FACTORIES["disk"]()
    for __ in range(40):
        tree.insert(500, 1)
    for key in range(100, 900, 7):
        tree.insert(key, 2)
    assert len(list(tree.scan_items(500, 500))) == 40


def test_disk_cursor_is_lazy():
    tree, keys = loaded("disk")
    cursor = tree.scan_items(keys[0], keys[-1])
    first = next(cursor)
    assert first == (keys[0], keys[0] + 1)
    # The generator can be abandoned without consuming the whole range.
    cursor.close()
