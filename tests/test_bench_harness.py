"""Tests for the experiment harness: results, runner, CLI, tiny figure runs."""

import pytest

from repro.bench import FigureResult, make_index, measure_operations
from repro.bench.__main__ import _parse_value, main
from repro.bench.cache_runner import INDEX_KINDS, build_tree
from repro.bench.figures import ALL_EXPERIMENTS, fig03, fig16, table1, table2
from repro.mem import MemorySystem
from repro.workloads import KeyWorkload


class TestFigureResult:
    def make(self):
        result = FigureResult("figX", "demo", ["a", "b"])
        result.add(a=1, b="x")
        result.add(a=2, b="y")
        return result

    def test_add_and_column(self):
        result = self.make()
        assert result.column("a") == [1, 2]

    def test_filter(self):
        result = self.make()
        assert result.filter(b="y") == [{"a": 2, "b": "y"}]
        assert result.filter(a=1, b="y") == []

    def test_format_table_contains_everything(self):
        result = self.make()
        result.notes.append("a note")
        text = result.format_table()
        assert "figX" in text
        assert "a note" in text
        assert "y" in text

    def test_format_empty_table(self):
        empty = FigureResult("figY", "nothing", ["only"])
        assert "figY" in empty.format_table()


class TestCacheRunner:
    def test_make_index_all_kinds(self):
        for kind in INDEX_KINDS:
            index = make_index(kind, page_size=4096, buffer_pages=64, num_keys_hint=10_000)
            index.insert(5, 50)
            assert index.search(5) == 50

    def test_make_index_unknown_kind(self):
        with pytest.raises(ValueError):
            make_index("btree-9000", page_size=4096)

    def test_build_tree_untraced_bulkload(self):
        mem = MemorySystem()
        workload = KeyWorkload(2000)
        keys, tids = workload.bulkload_arrays()
        tree = build_tree("disk", keys, tids, page_size=4096, mem=mem, buffer_pages=64)
        assert mem.stats.total_cycles == 0  # bulkload paused measurement
        assert tree.num_entries == 2000

    def test_measure_operations_counts(self):
        mem = MemorySystem()
        workload = KeyWorkload(2000)
        keys, tids = workload.bulkload_arrays()
        tree = build_tree("disk", keys, tids, page_size=4096, mem=mem, buffer_pages=64)
        phase = measure_operations(mem, tree.search, [int(k) for k in keys[:10]])
        assert phase.operations == 10
        assert phase.cycles_per_op > 0


class TestTinyFigureRuns:
    """Smoke-run the figure functions at minuscule scale."""

    def test_table1_lists_parameters(self):
        result = table1()
        names = result.column("parameter")
        assert any("T1" in name for name in names)

    def test_table2_has_all_schemes(self):
        result = table2()
        assert set(result.column("scheme")) == {"disk-first", "cache-first", "micro-indexing"}
        assert len(result.rows) == 12

    def test_fig03_normalized_to_baseline(self):
        result = fig03(num_keys=5000, searches=40)
        disk = next(r for r in result.rows if "disk" in r["index"])
        assert disk["total"] == 100.0
        assert disk["busy"] + disk["dcache_stalls"] + disk["other_stalls"] == pytest.approx(
            100.0, abs=0.5
        )

    def test_fig16_reports_fp_indexes_only(self):
        result = fig16(num_keys=8000, page_sizes=(4096,))
        assert set(result.column("index")) == {"fp-disk", "fp-cache"}

    def test_registry_covers_every_table_and_figure(self):
        expected = {
            "table1", "table2", "fig03", "fig10", "fig11", "fig12", "fig13",
            "fig14", "fig15", "fig16", "fig17", "fig18", "fig19",
        }
        assert expected <= set(ALL_EXPERIMENTS)
        assert any(name.startswith("ablation") for name in ALL_EXPERIMENTS)


class TestCli:
    def test_parse_value(self):
        assert _parse_value("5") == 5
        assert _parse_value("0.5") == 0.5
        assert _parse_value("1,2,3") == (1, 2, 3)
        assert _parse_value("hello") == "hello"

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig18" in out

    def test_single_experiment_with_overrides(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "simulation parameters" in out

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_override_changes_run(self, capsys):
        assert main(["fig03", "--set", "num_keys=4000", "--set", "searches=20"]) == 0
        out = capsys.readouterr().out
        assert "pB+tree" in out
