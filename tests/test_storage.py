"""Unit tests for the storage substrate: page store, buffer pool, disk array."""

import pytest

from repro.des import Environment
from repro.mem import AddressSpace, MemorySystem
from repro.storage import (
    AsyncPageReader,
    BufferPool,
    DiskArray,
    DiskParameters,
    PageStore,
    StorageConfig,
)


class FakePage:
    def __init__(self, label):
        self.label = label


# -- PageStore -----------------------------------------------------------------


def test_page_store_allocates_dense_ids():
    store = PageStore(page_size=4096)
    ids = [store.allocate(FakePage(i)) for i in range(5)]
    assert ids == [0, 1, 2, 3, 4]
    assert store.num_pages == 5


def test_page_store_free_and_reuse():
    store = PageStore(page_size=4096)
    first = store.allocate(FakePage("a"))
    store.free(first)
    assert store.num_pages == 0
    second = store.allocate(FakePage("b"))
    assert second == first  # id recycled
    assert store.page(second).label == "b"


def test_page_store_errors_on_bad_ids():
    store = PageStore(page_size=4096)
    with pytest.raises(KeyError):
        store.page(0)
    with pytest.raises(KeyError):
        store.free(3)


def test_page_store_replace():
    store = PageStore(page_size=4096)
    pid = store.allocate(FakePage("old"))
    store.replace(pid, FakePage("new"))
    assert store.page(pid).label == "new"


def test_page_store_total_bytes():
    store = PageStore(page_size=8192)
    store.allocate(FakePage(0))
    store.allocate(FakePage(1))
    assert store.total_bytes == 16384


# -- BufferPool -----------------------------------------------------------------


def make_pool(frames=4, mem=None):
    config = StorageConfig(page_size=4096, buffer_pool_pages=frames)
    store = PageStore(config.page_size)
    pool = BufferPool(config, store, mem=mem)
    return config, store, pool


def test_buffer_pool_hit_and_miss_counting():
    __, store, pool = make_pool()
    pid = store.allocate(FakePage("x"))
    pool.access(pid)
    pool.access(pid)
    assert pool.misses == 1
    assert pool.hits == 1


def test_buffer_pool_clock_eviction():
    __, store, pool = make_pool(frames=2)
    pids = [store.allocate(FakePage(i)) for i in range(3)]
    pool.access(pids[0])
    pool.access(pids[1])
    pool.access(pids[2])  # must evict one of the first two
    assert pool.resident_pages == 2
    assert pool.contains(pids[2])


def test_buffer_pool_clock_second_chance():
    """A page with its reference bit set survives over one with it clear."""
    __, store, pool = make_pool(frames=2)
    a, b, c, d = [store.allocate(FakePage(i)) for i in range(4)]
    pool.access(a)
    pool.access(b)
    # Installing c sweeps the clock: clears both ref bits, evicts a, and
    # leaves c with its bit set while b's bit is clear.
    pool.access(c)
    assert not pool.contains(a)
    # The next eviction must pick b (clear bit), giving c its second chance.
    pool.access(d)
    assert pool.contains(c)
    assert not pool.contains(b)


def test_buffer_pool_pinned_page_not_evicted():
    __, store, pool = make_pool(frames=2)
    a, b, c = [store.allocate(FakePage(i)) for i in range(3)]
    with pool.pinned(a):
        pool.access(b)
        pool.access(c)  # must evict b, not pinned a
        assert pool.contains(a)


def test_buffer_pool_all_pinned_raises():
    __, store, pool = make_pool(frames=1)
    a = store.allocate(FakePage("a"))
    b = store.allocate(FakePage("b"))
    with pool.pinned(a):
        with pytest.raises(RuntimeError):
            pool.access(b)


def test_buffer_pool_clear_resets_residency():
    __, store, pool = make_pool()
    pid = store.allocate(FakePage("x"))
    pool.access(pid)
    pool.clear()
    assert not pool.contains(pid)
    pool.access(pid)
    assert pool.misses == 2


def test_buffer_pool_invalidate():
    __, store, pool = make_pool()
    pid = store.allocate(FakePage("x"))
    pool.access(pid)
    pool.invalidate(pid)
    assert not pool.contains(pid)


def test_buffer_pool_frame_addresses_are_page_strided():
    mem = MemorySystem()
    config = StorageConfig(page_size=4096, buffer_pool_pages=4)
    store = PageStore(config.page_size)
    pool = BufferPool(config, store, mem=mem, address_space=AddressSpace())
    pids = [store.allocate(FakePage(i)) for i in range(4)]
    addresses = set()
    for pid in pids:
        __, address = pool.access(pid)
        addresses.add(address)
    assert len(addresses) == 4
    sorted_addresses = sorted(addresses)
    deltas = {b - a for a, b in zip(sorted_addresses, sorted_addresses[1:])}
    assert deltas == {4096}


def test_buffer_pool_charges_busy_time():
    mem = MemorySystem()
    __, store, pool = make_pool(mem=mem)
    pid = store.allocate(FakePage("x"))
    pool.access(pid)
    assert mem.stats.busy_cycles == mem.cpu.buffer_pool_access


def test_buffer_pool_access_unknown_page_raises():
    __, __, pool = make_pool()
    with pytest.raises(KeyError):
        pool.access(99)


# -- DiskArray ------------------------------------------------------------------


def timing_config(num_disks=1, page_size=4096):
    return StorageConfig(
        page_size=page_size,
        num_disks=num_disks,
        buffer_pool_pages=64,
        disk=DiskParameters(
            seek_time_us=5000,
            rotational_latency_us=3000,
            track_to_track_us=1000,
            transfer_rate_bytes_per_us=40.0,
        ),
    )


def test_single_random_read_time():
    env = Environment()
    config = timing_config()
    array = DiskArray(env, config)
    done = array.read_page(0)
    env.run(until=done)
    # seek + rotation + transfer of 4096 bytes at 40 B/us
    assert env.now == pytest.approx(5000 + 3000 + 4096 / 40.0)


def test_sequential_read_is_cheap():
    env = Environment()
    config = timing_config()
    array = DiskArray(env, config)

    def scan():
        yield array.read_page(0)
        first = env.now
        yield array.read_page(1)  # adjacent block: track-to-track only
        return env.now - first

    second_duration = env.run(until=env.process(scan()))
    assert second_duration == pytest.approx(1000 + 4096 / 40.0)


def test_far_read_pays_full_seek():
    env = Environment()
    config = timing_config()
    array = DiskArray(env, config)

    def scan():
        yield array.read_page(0)
        first = env.now
        yield array.read_page(1000)
        return env.now - first

    second_duration = env.run(until=env.process(scan()))
    assert second_duration == pytest.approx(5000 + 3000 + 4096 / 40.0)


def test_reads_on_distinct_disks_overlap():
    env = Environment()
    array = DiskArray(env, timing_config(num_disks=2))

    def scan():
        # Pages 0 and 1 stripe onto disks 0 and 1.
        yield env.all_of([array.read_page(0), array.read_page(1)])

    env.run(until=env.process(scan()))
    single = 5000 + 3000 + 4096 / 40.0
    assert env.now == pytest.approx(single)  # fully parallel


def test_reads_on_same_disk_serialize():
    env = Environment()
    array = DiskArray(env, timing_config(num_disks=2))

    def scan():
        # Pages 0 and 2 both live on disk 0.
        yield env.all_of([array.read_page(0), array.read_page(2)])

    env.run(until=env.process(scan()))
    first = 5000 + 3000 + 4096 / 40.0
    second = 1000 + 4096 / 40.0  # blocks 0 -> 1 on the same disk
    assert env.now == pytest.approx(first + second)


def test_striping_layout():
    config = timing_config(num_disks=4)
    assert [config.disk_of(p) for p in range(6)] == [0, 1, 2, 3, 0, 1]
    assert config.block_of(5) == 1


# -- AsyncPageReader ----------------------------------------------------------------


def reader_fixture(num_disks=1, frames=16):
    env = Environment()
    config = timing_config(num_disks=num_disks)
    config = StorageConfig(
        page_size=config.page_size,
        num_disks=num_disks,
        buffer_pool_pages=frames,
        disk=config.disk,
    )
    store = PageStore(config.page_size)
    pool = BufferPool(config, store)
    array = DiskArray(env, config)
    reader = AsyncPageReader(env, array, pool)
    return env, store, pool, reader


def test_demand_read_blocks_for_io():
    env, store, pool, reader = reader_fixture()
    pid = store.allocate(FakePage("x"))

    def scan():
        yield from reader.demand(pid)

    env.run(until=env.process(scan()))
    assert env.now > 0
    assert pool.contains(pid)
    assert reader.demand_reads == 1


def test_demand_hit_is_instant():
    env, store, pool, reader = reader_fixture()
    pid = store.allocate(FakePage("x"))
    pool.access(pid)

    def scan():
        yield from reader.demand(pid)

    env.run(until=env.process(scan()))
    assert env.now == 0
    assert reader.demand_hits == 1


def test_prefetch_then_demand_coalesces():
    env, store, pool, reader = reader_fixture()
    pid = store.allocate(FakePage("x"))

    def scan():
        reader.prefetch(pid)
        yield env.timeout(1)
        yield from reader.demand(pid)

    env.run(until=env.process(scan()))
    assert reader.prefetches == 1
    assert reader.demand_covered == 1
    assert reader.demand_reads == 0


def test_prefetch_of_resident_page_is_noop():
    env, store, pool, reader = reader_fixture()
    pid = store.allocate(FakePage("x"))
    pool.access(pid)
    assert reader.prefetch(pid) is None
    assert reader.prefetches == 0


def test_completed_prefetch_installs_page():
    env, store, pool, reader = reader_fixture()
    pid = store.allocate(FakePage("x"))

    def scan():
        reader.prefetch(pid)
        yield env.timeout(60000)

    env.run(until=env.process(scan()))
    assert pool.contains(pid)
    assert reader.outstanding == 0


def test_preload_marks_resident():
    env, store, pool, reader = reader_fixture()
    pids = [store.allocate(FakePage(i)) for i in range(3)]
    reader.preload(pids)
    for pid in pids:
        assert pool.contains(pid)


# -- in-flight coalescing edge cases --------------------------------------------


def _seed_with_outcomes(timeout_rate, wanted):
    """A seed whose successive reads on disk 0 time out per ``wanted``."""
    import random

    for seed in range(1000):
        stream = random.Random((seed << 20) ^ 1)
        got = []
        for __ in wanted:
            timeout_draw = stream.random()
            stream.random()  # corrupt draw
            got.append(timeout_draw < timeout_rate)
        if got == list(wanted):
            return seed
    raise AssertionError("no suitable seed in range")


def faulty_reader_fixture(wanted_timeouts):
    """Reader over a single disk whose reads time out per ``wanted_timeouts``."""
    from repro.faults import DiskFaultProfile, FaultInjector, FaultPlan

    rate = 0.5
    plan = FaultPlan(
        seed=_seed_with_outcomes(rate, wanted_timeouts),
        default=DiskFaultProfile(timeout_rate=rate),
    )
    env = Environment()
    config = StorageConfig(
        page_size=4096, num_disks=1, buffer_pool_pages=16, disk=timing_config().disk
    )
    store = PageStore(config.page_size)
    pool = BufferPool(config, store)
    array = DiskArray(env, config, injector=FaultInjector(plan))
    reader = AsyncPageReader(env, array, pool)
    return env, store, pool, reader


def test_demand_recovers_when_coalesced_prefetch_fails_mid_flight():
    """A demand that piggybacked on a failing prefetch issues its own read."""
    env, store, pool, reader = faulty_reader_fixture([True, False])
    pid = store.allocate(FakePage("x"))

    def scan():
        reader.prefetch(pid)
        yield env.timeout(1)  # arrive while the doomed prefetch is in flight
        yield from reader.demand(pid)

    env.run(until=env.process(scan()))
    assert pool.contains(pid)
    assert reader.prefetches == 1
    assert reader.demand_covered == 1  # it did coalesce first...
    assert reader.demand_reads == 1  # ...then fell back to its own read


def test_demand_own_read_failure_propagates():
    """A demand whose *own* read fails (no retry policy) surfaces the fault."""
    import pytest as _pytest

    from repro.faults import DiskTimeoutError

    env, store, pool, reader = faulty_reader_fixture([True])
    pid = store.allocate(FakePage("x"))

    def scan():
        with _pytest.raises(DiskTimeoutError):
            yield from reader.demand(pid)

    env.run(until=env.process(scan()))
    assert not pool.contains(pid)


def test_duplicate_prefetches_do_not_double_count():
    env, store, pool, reader = reader_fixture()
    pid = store.allocate(FakePage("x"))

    def scan():
        first = reader.prefetch(pid)
        assert first is not None
        assert reader.prefetch(pid) is None  # duplicate while in flight
        assert reader.prefetches == 1
        yield first
        assert reader.prefetch(pid) is None  # duplicate once resident

    env.run(until=env.process(scan()))
    assert reader.prefetches == 1
    assert pool.contains(pid)


def test_prefetch_disabled_by_degradation_switch():
    env, store, pool, reader = reader_fixture()
    pid = store.allocate(FakePage("x"))
    reader.prefetch_enabled = False
    assert reader.prefetch(pid) is None
    assert reader.prefetches == 0
    assert reader.outstanding == 0
