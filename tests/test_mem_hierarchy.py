"""Behavioural tests for the memory-hierarchy simulator.

These pin down the latency model the paper's analysis relies on: a full miss
costs T1 = 150 cycles, an extra pipelined (prefetched) miss costs
Tnext = 10 cycles, and L2 hits cost 15 cycles.
"""

import pytest

from repro.mem import CpuCostModel, MemoryConfig, MemorySystem


def make_mem(**overrides):
    return MemorySystem(MemoryConfig(**overrides), CpuCostModel())


def test_cold_read_costs_full_memory_latency():
    mem = make_mem()
    mem.read(0, 4)
    assert mem.stats.dcache_stall_cycles == 150
    assert mem.stats.memory_fetches == 1


def test_second_read_same_line_is_l1_hit():
    mem = make_mem()
    mem.read(0, 4)
    before = mem.stats.dcache_stall_cycles
    mem.read(32, 4)  # same 64B line
    assert mem.stats.dcache_stall_cycles == before
    assert mem.stats.l1_hits == 1


def test_read_spanning_two_lines_touches_both():
    mem = make_mem()
    mem.read(60, 8)  # crosses the line boundary at 64
    assert mem.stats.memory_fetches == 2


def test_l2_hit_costs_l2_latency():
    # Tiny L1 (one set, 2 ways) so a third distinct line evicts the first.
    mem = make_mem(l1_size=128, l1_assoc=2)
    mem.read(0 * 64, 4)
    mem.read(1 * 64, 4)
    mem.read(2 * 64, 4)  # evicts line 0 from L1; L2 still holds it
    before = mem.stats.dcache_stall_cycles
    mem.read(0, 4)
    assert mem.stats.dcache_stall_cycles == before + 15
    assert mem.stats.l2_hits == 1


def test_prefetched_node_costs_t1_plus_pipelined_misses():
    """Reading a w-line node after prefetching it costs ~T1 + (w-1)*Tnext."""
    w = 8
    mem = make_mem()
    mem.prefetch(0, w * 64)
    for i in range(w):
        mem.read(i * 64, 4)
    expected_stall = 150 + (w - 1) * 10
    # Busy time (prefetch instructions) overlaps with the fetches, so the
    # measured stall is slightly below the analytic bound.
    assert expected_stall - 2 * w <= mem.stats.total_cycles <= expected_stall + 2 * w
    assert mem.stats.prefetch_covered == w


def test_unprefetched_node_costs_full_latency_per_line():
    w = 8
    mem = make_mem()
    for i in range(w):
        mem.read(i * 64, 4)
    assert mem.stats.dcache_stall_cycles == w * 150


def test_prefetch_of_resident_line_is_free_of_bus_traffic():
    mem = make_mem()
    mem.read(0, 4)
    fetches_before = mem.stats.memory_fetches
    mem.prefetch(0, 4)
    mem.read(0, 4)
    assert mem.stats.memory_fetches == fetches_before
    assert mem.stats.dcache_stall_cycles == 150  # unchanged


def test_mshr_pressure_stalls_excess_prefetches():
    mem = make_mem(miss_handlers=4)
    mem.prefetch(0, 16 * 64)  # 16 lines, only 4 MSHRs
    assert mem.stats.dcache_stall_cycles > 0


def test_clear_caches_forces_refetch():
    mem = make_mem()
    mem.read(0, 4)
    mem.clear_caches()
    mem.read(0, 4)
    assert mem.stats.memory_fetches == 2


def test_paused_disables_accounting():
    mem = make_mem()
    with mem.paused():
        mem.read(0, 4)
        mem.busy(100)
    assert mem.stats.total_cycles == 0
    assert mem.stats.memory_fetches == 0


def test_measure_reports_phase_delta():
    mem = make_mem()
    mem.read(0, 4)
    with mem.measure() as phase:
        mem.read(64, 4)
        mem.busy(7)
    assert phase.memory_fetches == 1
    assert phase.busy_cycles == 7
    assert phase.dcache_stall_cycles == 150


def test_busy_and_other_stall_accumulate():
    mem = make_mem()
    mem.busy(10)
    mem.other_stall(5)
    assert mem.stats.busy_cycles == 10
    assert mem.stats.other_stall_cycles == 5
    assert mem.stats.total_cycles == 15


def test_probe_penalty_charges_compare_and_mispredict():
    mem = make_mem()
    mem.probe_penalty()
    cpu = mem.cpu
    assert mem.stats.busy_cycles == cpu.compare
    assert mem.stats.other_stall_cycles == cpu.mispredict_rate * cpu.branch_mispredict


def test_write_does_not_stall():
    mem = make_mem()
    mem.write(0, 4)
    assert mem.stats.dcache_stall_cycles == 0
    assert mem.stats.store_fetches == 1


def test_read_after_cold_write_waits_for_allocation():
    mem = make_mem()
    mem.write(0, 4)
    mem.read(0, 4)
    # The load waits for the write-allocate fetch, minus elapsed busy time.
    assert 0 < mem.stats.dcache_stall_cycles <= 150
    assert mem.stats.prefetch_covered == 1


def test_write_to_resident_line_is_free():
    mem = make_mem()
    mem.read(0, 4)
    stalls = mem.stats.dcache_stall_cycles
    mem.write(32, 4)
    assert mem.stats.dcache_stall_cycles == stalls
    assert mem.stats.store_fetches == 0


def test_breakdown_fractions_sum_to_one():
    mem = make_mem()
    mem.read(0, 4)
    mem.busy(50)
    fractions = mem.stats.breakdown()
    assert sum(fractions.values()) == pytest.approx(1.0)


def test_reset_zeroes_everything():
    mem = make_mem()
    mem.read(0, 4)
    mem.reset()
    assert mem.now == 0
    assert mem.stats.total_cycles == 0
    mem.read(0, 4)
    assert mem.stats.memory_fetches == 1


def test_reset_zeroes_cache_hit_miss_counters():
    """Regression: reset() used to leave l1/l2 hit/miss counters running,
    so back-to-back measurement phases on one MemorySystem double-counted
    in the per-cache counters while MemoryStats started fresh."""
    mem = make_mem()
    mem.read(0, 4)
    mem.read(0, 4)  # l1 hit
    assert mem.l1.misses == 1 and mem.l1.hits == 1
    mem.reset()
    assert mem.l1.hits == 0
    assert mem.l1.misses == 0
    assert mem.l2.hits == 0
    assert mem.l2.misses == 0
    mem.read(0, 4)
    assert mem.l1.misses == 1  # counts this phase only


def test_t1_tnext_properties():
    config = MemoryConfig()
    assert config.t1 == 150
    assert config.tnext == 10
