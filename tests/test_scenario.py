"""Tests for the declarative scenario layer (`repro.scenario`).

Three claims, mirroring the module's contract:

1. **Validation before simulation** — every cross-field rule rejects its
   inconsistent combination with an actionable message, table-driven so
   each rule's message content is asserted, and in ~milliseconds (no DES
   clock ever starts for an invalid spec).
2. **Round-trip fidelity** — dict -> spec -> TOML -> spec is the identity
   for every representable spec (hypothesis-driven), and every committed
   matrix file loads and validates.
3. **Determinism** — a matrix's results are byte-identical across
   ``jobs`` values and across repeated runs.
"""

import time
from pathlib import Path

import pytest
import tomllib

from repro.scenario import (
    ScenarioError,
    ScenarioSpec,
    load_matrix,
    lower,
    matrix_payload,
    matrix_to_csv,
    matrix_to_markdown,
    plan_scenario_cells,
    run_matrix,
    run_scenario,
    validate_matrix,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
SCENARIO_DIR = REPO_ROOT / "benchmarks" / "scenarios"


def make(**overrides):
    """A valid baseline spec, with overrides applied (not yet validated)."""
    base = dict(name="t", runner="serve", num_rows=2_000, offered_loads=(400,),
                duration_s=0.2)
    base.update(overrides)
    return ScenarioSpec(**base)


# ---------------------------------------------------------------------------
# 1. The rejection table: one row per cross-field rule, message asserted.
# ---------------------------------------------------------------------------

REJECTIONS = [
    # (overrides, substring that must appear in the message)
    (dict(runner="warp"), "unknown runner 'warp'"),
    (dict(admission="lifo"), "unknown admission mode 'lifo'"),
    (dict(concurrency="lockfree"), "unknown concurrency mode 'lockfree'"),
    (dict(distribution="pareto"), "unknown distribution 'pareto'"),
    (dict(runner="shard", shard_count=2, num_disks=8, placement="stripe"),
     "unknown placement 'stripe'"),
    (dict(num_rows=0), "num_rows must be >= 1"),
    (dict(duration_s=0.0), "duration_s must be positive"),
    (dict(deadline_ms=-5.0), "deadline_ms must be positive"),
    (dict(lookup=0.0, scan=0.0, insert=0.0), "positive sum"),
    (dict(offered_loads=()), "non-empty list of positive"),
    (dict(burstiness=0.5), "burstiness is the mean arrival-burst size"),
    # crash point without a WAL: recovery would have nothing to replay.
    (dict(runner="chaos", wal=False, deadline_ms=30.0, chaos="crash wal=5"),
     "crashing without a write-ahead log loses every acknowledged write"),
    # WAL claimed on a runner with no WAL wiring.
    (dict(runner="serve", wal=True), "has no WAL wiring"),
    # chaos/concurrency substrates always log; the spec must say so.
    (dict(runner="chaos", wal=False, deadline_ms=30.0),
     "serves every insert through a write-ahead log"),
    # a chaos clause aimed at a runner that can't execute it.
    (dict(runner="serve", chaos="corrupt rate=0.1"),
     "only runs under runner = 'chaos'"),
    # malformed clause text caught at parse time.
    (dict(runner="chaos", wal=True, deadline_ms=30.0, chaos="explode disk=0"),
     "bad chaos clause"),
    # fault aimed at a disk the array doesn't have.
    (dict(runner="chaos", wal=True, deadline_ms=30.0, num_disks=4,
          chaos="limp disk=7 x4 @0.1s"),
     "targets disk 7 but the array has num_disks = 4"),
    # killing the only disk is unsurvivable.
    (dict(runner="chaos", wal=True, deadline_ms=30.0, num_disks=1,
          chaos="kill disk=0 @0.1s"),
     "unsurvivable"),
    # chaos clients need a deadline (brownout SLO keys off it too).
    (dict(runner="chaos", wal=True, deadline_ms=None), "set deadline_ms"),
    # deadline on runners that would silently ignore it.
    (dict(runner="shard", shard_count=2, num_disks=8, deadline_ms=20.0),
     "not wired into the 'shard' runner"),
    # batch admission with no lookups to batch.
    (dict(admission="batch", lookup=0.0, scan=0.9, insert=0.1),
     "no batch would ever form"),
    # batch admission on a closed-loop runner.
    (dict(runner="concurrency", wal=True, concurrency="page", admission="batch"),
     "admits each client's op individually"),
    # more shards than spindles.
    (dict(runner="shard", shard_count=16, num_disks=12),
     "shard_count = 16 exceeds num_disks = 12"),
    # sharding without the shard runner.
    (dict(runner="serve", shard_count=2), "needs runner = 'shard'"),
    # one shard has no boundaries to optimize: the cell emits zero rows.
    (dict(runner="shard", shard_count=1, placement="optimized"),
     "no boundaries to optimize"),
    # paper-scale keys under a smoke deadline: every query would time out.
    (dict(num_rows=10_000_000, deadline_ms=5.0),
     "every query would time out"),
    # the deliberately-broken concurrency mode is not a scenario.
    (dict(concurrency="broken"), "negative control"),
    # the concurrency runner exists to compare latching regimes.
    (dict(runner="concurrency", wal=True, concurrency="none"),
     "compares latching regimes"),
    # page latching isn't wired into the shard fleet.
    (dict(runner="shard", shard_count=2, num_disks=8, concurrency="page"),
     "not wired into the shard fleet"),
    # a scan can't cover more entries than exist.
    (dict(num_rows=50, scan_span=64), "exceeds the 50-key universe"),
    # skew/burstiness only shape open-loop arrivals.
    (dict(runner="concurrency", wal=True, concurrency="page", distribution="zipf"),
     "not plumbed into the closed-loop"),
    (dict(runner="chaos", wal=True, deadline_ms=30.0, burstiness=4.0),
     "closed-loop (sessions self-throttle on completions)"),
]


@pytest.mark.parametrize(
    "overrides, fragment",
    REJECTIONS,
    ids=[f"{i}-{frag[:34]}" for i, (_, frag) in enumerate(REJECTIONS)],
)
def test_invalid_combination_rejected_with_actionable_message(overrides, fragment):
    spec = make(**overrides)
    started = time.monotonic()
    with pytest.raises(ScenarioError) as excinfo:
        spec.validate()
    elapsed = time.monotonic() - started
    assert fragment in str(excinfo.value), (
        f"expected {fragment!r} in:\n{excinfo.value}"
    )
    # Every message names the scenario so matrix-level aggregation stays
    # attributable, and validation never starts the DES clock.
    assert "scenario 't'" in str(excinfo.value)
    assert elapsed < 1.0, "validation must fail before any simulation time"


def test_validate_reports_every_problem_at_once():
    spec = make(runner="chaos", wal=False, deadline_ms=None, burstiness=4.0)
    with pytest.raises(ScenarioError) as excinfo:
        spec.validate()
    assert len(excinfo.value.problems) >= 3


def test_unknown_field_and_missing_required_rejected():
    with pytest.raises(ScenarioError, match="unknown field\\(s\\) warp_factor"):
        ScenarioSpec.from_dict({"name": "x", "runner": "serve", "warp_factor": 9})
    with pytest.raises(ScenarioError, match="missing required field 'runner'"):
        ScenarioSpec.from_dict({"name": "x"})


def test_valid_spec_validates_clean():
    assert make().problems() == []
    assert make(
        runner="chaos", wal=True, deadline_ms=30.0,
        chaos="corrupt rate=0.2; crash wal=10", num_disks=4,
    ).problems() == []


# ---------------------------------------------------------------------------
# 2. Round-trips and committed files.
# ---------------------------------------------------------------------------

def test_toml_round_trip_by_hand():
    spec = make(distribution="zipf", zipf_theta=1.4, burstiness=2.5,
                offered_loads=(200, 1600), deadline_ms=None)
    text = spec.to_toml()
    back = ScenarioSpec.from_dict(tomllib.loads(text)["scenario"][0])
    assert back == spec


try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis ships with the dev env
    HAVE_HYPOTHESIS = False


if HAVE_HYPOTHESIS:
    # Text that TOML basic strings can carry (no control chars we don't
    # escape; the emitter escapes quote/backslash/newline/tab itself).
    names = st.text(
        st.characters(codec="utf-8", exclude_categories=("Cs",), min_codepoint=0x20),
        min_size=1, max_size=40,
    )
    finite_floats = st.floats(
        min_value=0.001, max_value=1e6, allow_nan=False, allow_infinity=False
    )

    @st.composite
    def specs(draw):
        return ScenarioSpec(
            name=draw(names),
            runner=draw(st.sampled_from(["serve", "chaos", "shard", "concurrency"])),
            lookup=draw(finite_floats),
            scan=draw(finite_floats),
            insert=draw(finite_floats),
            scan_span=draw(st.integers(1, 10_000)),
            distribution=draw(st.sampled_from(["uniform", "zipf"])),
            zipf_theta=draw(finite_floats),
            burstiness=draw(finite_floats),
            chaos=draw(st.sampled_from(
                ["", "corrupt rate=0.2", "kill disk=0 @0.1s; crash wal=5"]
            )),
            chaos_seed=draw(st.integers(0, 2**31)),
            wal=draw(st.booleans()),
            num_rows=draw(st.integers(1, 10**8)),
            num_disks=draw(st.integers(1, 64)),
            page_size=draw(st.sampled_from([512, 1024, 4096, 8192])),
            shard_count=draw(st.integers(1, 64)),
            placement=draw(st.sampled_from(["equal_width", "optimized"])),
            admission=draw(st.sampled_from(["fifo", "batch"])),
            batch_max=draw(st.integers(1, 256)),
            batch_window_ms=draw(finite_floats),
            concurrency=draw(st.sampled_from(["none", "page", "coarse"])),
            offered_loads=tuple(draw(
                st.lists(st.integers(1, 10**6), min_size=1, max_size=5)
            )),
            duration_s=draw(finite_floats),
            sessions=draw(st.integers(1, 64)),
            ops_per_session=draw(st.integers(1, 1000)),
            think_time_ms=draw(finite_floats),
            deadline_ms=draw(st.one_of(st.none(), finite_floats)),
            max_concurrency=draw(st.integers(1, 256)),
            queue_depth=draw(st.integers(1, 1024)),
            pool_frames=draw(st.integers(1, 4096)),
            seed=draw(st.integers(0, 2**31)),
        )

    @settings(max_examples=200, deadline=None)
    @given(spec=specs())
    def test_toml_round_trip_hypothesis(spec):
        """dict -> spec -> TOML -> tomllib -> spec is the identity.

        Round-trip fidelity is independent of validity: even specs the
        validator would reject must survive serialization unchanged, or a
        matrix file could silently mean something else than it says.
        """
        text = spec.to_toml()
        back = ScenarioSpec.from_dict(tomllib.loads(text)["scenario"][0])
        assert back == spec


def test_every_committed_scenario_file_loads_and_validates():
    files = sorted(SCENARIO_DIR.glob("*.toml"))
    assert len(files) >= 6, f"expected the committed matrices in {SCENARIO_DIR}"
    for path in files:
        specs = load_matrix(path)
        validate_matrix(specs)  # raises on any problem
        assert specs, path


def test_matrix_defaults_overlay_and_duplicate_names(tmp_path):
    good = tmp_path / "m.toml"
    good.write_text(
        "[defaults]\nnum_rows = 1234\n\n"
        '[[scenario]]\nname = "a"\nrunner = "serve"\n\n'
        '[[scenario]]\nname = "b"\nrunner = "serve"\nnum_rows = 99\n'
    )
    specs = load_matrix(good)
    assert [s.num_rows for s in specs] == [1234, 99]

    dup = tmp_path / "dup.toml"
    dup.write_text(
        '[[scenario]]\nname = "a"\nrunner = "serve"\n\n'
        '[[scenario]]\nname = "a"\nrunner = "serve"\n'
    )
    with pytest.raises(ScenarioError, match="duplicate scenario name 'a'"):
        load_matrix(dup)

    empty = tmp_path / "empty.toml"
    empty.write_text("[defaults]\nseed = 1\n")
    with pytest.raises(ScenarioError, match="no \\[\\[scenario\\]\\] tables"):
        load_matrix(empty)


# ---------------------------------------------------------------------------
# 3. Lowering and determinism.
# ---------------------------------------------------------------------------

def test_lowering_translates_units_and_axes():
    spec = make(runner="chaos", wal=True, deadline_ms=30.0, think_time_ms=1.5,
                chaos="corrupt rate=0.2", chaos_seed=7, num_disks=4)
    runner, kwargs = lower(spec)
    assert runner == "chaos"
    assert kwargs["deadline_us"] == 30_000.0
    assert kwargs["think_time_us"] == 1_500.0
    assert kwargs["schedule_text"] == "corrupt rate=0.2"
    assert kwargs["schedule_seed"] == 7

    spec = make(runner="shard", shard_count=4, num_disks=8, distribution="zipf",
                zipf_theta=1.3)
    runner, kwargs = lower(spec)
    assert kwargs["num_disks"] == 2  # fleet disks divided per shard
    assert kwargs["shard_counts"] == (4,)
    assert kwargs["distribution"] == "zipf:1.3"


def test_cell_planning_splits_open_loop_loads_and_chaos_modes():
    serve_cells = plan_scenario_cells(make(offered_loads=(200, 800, 1600)))
    assert len(serve_cells) == 3
    assert [c[1]["offered_loads"] for c in serve_cells] == [(200,), (800,), (1600,)]
    chaos_cells = plan_scenario_cells(
        make(runner="chaos", wal=True, deadline_ms=30.0)
    )
    assert [c[1]["modes"] for c in chaos_cells] == [("baseline",), ("resilient",)]


def test_run_scenario_rejects_invalid_before_running():
    with pytest.raises(ScenarioError):
        run_scenario(make(runner="serve", wal=True))


def test_matrix_jobs2_byte_identical_to_jobs1():
    import json

    specs = load_matrix(SCENARIO_DIR / "serve_smoke.toml")
    a = matrix_payload(specs, run_matrix(specs, jobs=1))
    b = matrix_payload(specs, run_matrix(specs, jobs=2))
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


def test_matrix_fails_whole_before_any_cell_runs():
    specs = [make(), make(name="bad", runner="serve", wal=True)]
    started = time.monotonic()
    with pytest.raises(ScenarioError, match="scenario 'bad'"):
        run_matrix(specs)
    # The valid first spec must not have burned its simulation time.
    assert time.monotonic() - started < 1.0


def test_renderers_cover_every_scenario_and_row():
    specs = load_matrix(SCENARIO_DIR / "batch_smoke.toml")
    results = run_matrix(specs, jobs=1)
    csv = matrix_to_csv(results)
    lines = csv.strip().splitlines()
    assert lines[0].startswith("scenario,")
    assert len(lines) == 1 + sum(len(r.rows) for r in results)
    md = matrix_to_markdown(specs, results)
    for spec in specs:
        assert f"## `{spec.name}`" in md
    payload = matrix_payload(specs, results)
    assert [entry["spec"]["name"] for entry in payload["scenarios"]] == [
        s.name for s in specs
    ]
