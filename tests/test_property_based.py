"""Property-based tests (hypothesis) for the core data structures."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.btree import chunk_evenly, traced_searchsorted
from repro.btree.context import TreeEnvironment
from repro.btree.trace import Tracer
from repro.core import ExternalJumpPointerArray, LineAllocator
from repro.mem import Cache, MemorySystem, align_up

fast = settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])


# -- chunk_evenly -------------------------------------------------------------


@fast
@given(total=st.integers(0, 10_000), max_chunk=st.integers(1, 500))
def test_chunk_evenly_partitions(total, max_chunk):
    sizes = chunk_evenly(total, max_chunk)
    assert sum(sizes) == total
    assert all(1 <= s <= max_chunk for s in sizes)
    if sizes:
        assert max(sizes) - min(sizes) <= 1  # balanced


# -- traced binary search matches numpy ----------------------------------------


@fast
@given(
    values=st.lists(st.integers(0, 1000), min_size=0, max_size=80),
    key=st.integers(0, 1000),
    side=st.sampled_from(["left", "right"]),
)
def test_traced_searchsorted_matches_numpy(values, key, side):
    keys = np.array(sorted(values), dtype=np.uint32)
    mem = MemorySystem()
    tracer = Tracer(mem)
    got = traced_searchsorted(keys, len(keys), key, 4096, 4, tracer, side=side)
    assert got == int(np.searchsorted(keys, key, side=side))


# -- LineAllocator ----------------------------------------------------------------


@fast
@given(
    operations=st.lists(
        st.tuples(st.sampled_from(["alloc", "free"]), st.integers(1, 5), st.integers(0, 63)),
        max_size=60,
    )
)
def test_line_allocator_never_overlaps(operations):
    allocator = LineAllocator(64)
    live: list[tuple[int, int]] = []
    for op, width, hint in operations:
        if op == "alloc":
            line = allocator.alloc(width, hint=hint)
            if line is not None:
                for other_line, other_width in live:
                    assert line + width <= other_line or other_line + other_width <= line
                assert 1 <= line and line + width <= 64
                live.append((line, width))
        elif live:
            line, width = live.pop()
            allocator.free(line, width)
    assert allocator.free_lines == 63 - sum(w for __, w in live)


# -- Cache LRU model ---------------------------------------------------------------


@fast
@given(accesses=st.lists(st.integers(0, 30), min_size=1, max_size=200))
def test_cache_matches_reference_lru(accesses):
    assoc, num_sets = 2, 4
    cache = Cache(size_bytes=64 * assoc * num_sets, line_size=64, associativity=assoc)
    reference = [[] for __ in range(num_sets)]  # per-set LRU lists (MRU last)
    for line in accesses:
        cache_set = reference[line % num_sets]
        hit = line in cache_set
        assert cache.lookup(line) == hit
        if hit:
            cache_set.remove(line)
        cache.insert(line)
        cache_set.append(line)
        if len(cache_set) > assoc:
            cache_set.pop(0)
    for line in range(31):
        assert cache.contains(line) == (line in reference[line % num_sets])


# -- align_up ----------------------------------------------------------------------


@fast
@given(value=st.integers(0, 1 << 30), shift=st.integers(0, 12))
def test_align_up_properties(value, shift):
    alignment = 1 << shift
    aligned = align_up(value, alignment)
    assert aligned % alignment == 0
    assert 0 <= aligned - value < alignment


# -- external jump-pointer array ------------------------------------------------------


@fast
@given(
    seeds=st.lists(st.integers(0, 10_000), min_size=1, max_size=30, unique=True),
    insertions=st.lists(st.tuples(st.integers(0, 29), st.integers(20_000, 30_000)), max_size=40),
)
def test_jump_pointer_array_matches_list(seeds, insertions):
    jpa = ExternalJumpPointerArray(chunk_capacity=4)
    jpa.build(seeds)
    reference = list(seeds)
    next_id = 100_000
    for position, __ in insertions:
        left = reference[position % len(reference)]
        jpa.insert_after(left, next_id)
        reference.insert(reference.index(left) + 1, next_id)
        next_id += 1
    assert jpa.to_list() == reference
    # iter_from any element yields the proper suffix.
    probe = reference[len(reference) // 2]
    assert list(jpa.iter_from(probe)) == reference[reference.index(probe) :]


# -- index invariants under random workloads --------------------------------------------


def _ops_strategy():
    return st.lists(
        st.tuples(st.sampled_from(["insert", "delete", "search"]), st.integers(1, 400)),
        min_size=1,
        max_size=120,
    )


def _check_index_against_dict(make_index, operations):
    index = make_index()
    reference: dict[int, int] = {}
    for op, key in operations:
        if op == "insert":
            if key not in reference:
                index.insert(key, key + 1)
                reference[key] = key + 1
        elif op == "delete":
            assert index.delete(key) == (key in reference)
            reference.pop(key, None)
        else:
            assert index.search(key) == reference.get(key)
    assert index.num_entries == len(reference)
    assert list(index.items()) == sorted(reference.items())
    index.validate()


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(operations=_ops_strategy())
def test_disk_btree_random_ops(operations):
    from repro.baselines import DiskBPlusTree

    _check_index_against_dict(
        lambda: DiskBPlusTree(TreeEnvironment(page_size=512, buffer_pages=128)), operations
    )


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(operations=_ops_strategy())
def test_micro_index_random_ops(operations):
    from repro.baselines import MicroIndexTree

    _check_index_against_dict(
        lambda: MicroIndexTree(TreeEnvironment(page_size=1024, buffer_pages=128)), operations
    )


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(operations=_ops_strategy())
def test_disk_first_fp_tree_random_ops(operations):
    from repro.core import DiskFirstFpTree

    _check_index_against_dict(
        lambda: DiskFirstFpTree(TreeEnvironment(page_size=1024, buffer_pages=128)), operations
    )


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(operations=_ops_strategy())
def test_cache_first_fp_tree_random_ops(operations):
    from repro.core import CacheFirstFpTree

    _check_index_against_dict(
        lambda: CacheFirstFpTree(
            TreeEnvironment(page_size=1024, buffer_pages=128), num_keys_hint=10_000
        ),
        operations,
    )


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(operations=_ops_strategy())
def test_pbtree_random_ops(operations):
    from repro.baselines import PrefetchingBPlusTree

    _check_index_against_dict(lambda: PrefetchingBPlusTree(width_lines=2), operations)


# -- faults only cost time, never correctness ----------------------------------------------


def _des_leaf_scan(index, plan):
    """Scan an index's leaf pages through the DES reader; returns the entry total."""
    from repro.des import Environment
    from repro.faults import FaultInjector
    from repro.storage import AsyncPageReader, BufferPool, DiskArray, RetryPolicy, StorageConfig

    leaf_pids = index.leaf_page_ids()
    store = index.env.store
    config = StorageConfig(
        page_size=store.page_size,
        num_disks=2,
        buffer_pool_pages=len(leaf_pids) + 8,
    )
    env = Environment()
    injector = FaultInjector(plan) if plan is not None else None
    disks = DiskArray(env, config, injector=injector, mirrored=True)
    pool = BufferPool(config, store)
    policy = RetryPolicy(max_attempts=8) if plan is not None else None
    reader = AsyncPageReader(env, disks, pool, policy=policy, seed=plan.seed if plan else 0)
    total = 0

    def scanner():
        nonlocal total
        for pid in leaf_pids:
            yield from reader.demand(pid)
            total += store.page(pid).count

    env.run(until=env.process(scanner()))
    return total


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    operations=st.lists(
        st.tuples(st.sampled_from(["insert", "delete"]), st.integers(1, 400)),
        min_size=1,
        max_size=80,
    ),
    fault_seed=st.integers(0, 7),
)
def test_faulty_scan_preserves_tree_invariants_and_results(operations, fault_seed):
    """Random workloads + a nonzero fault plan: faults cost time, never answers."""
    from repro.baselines import DiskBPlusTree
    from repro.faults import DiskFaultProfile, FaultPlan

    index = DiskBPlusTree(TreeEnvironment(page_size=512, buffer_pages=128))
    reference: dict[int, int] = {}
    for op, key in operations:
        if op == "insert":
            if key not in reference:
                index.insert(key, key + 1)
                reference[key] = key + 1
        else:
            index.delete(key)
            reference.pop(key, None)
    index.validate()
    before_items = list(index.items())

    plan = FaultPlan(
        seed=fault_seed,
        default=DiskFaultProfile(corrupt_rate=0.1, timeout_rate=0.05),
    )
    faulty_total = _des_leaf_scan(index, plan)
    clean_total = _des_leaf_scan(index, None)
    assert faulty_total == clean_total == index.num_entries

    # The faulty scan left the tree structurally intact and its answers unchanged.
    index.validate()
    assert list(index.items()) == before_items
    assert before_items == sorted(reference.items())


# -- scan consistency across implementations -----------------------------------------------


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    n=st.integers(10, 400),
    bounds=st.tuples(st.integers(0, 2000), st.integers(0, 2000)),
)
def test_all_indexes_agree_on_scans(n, bounds):
    from repro.baselines import DiskBPlusTree, MicroIndexTree
    from repro.core import CacheFirstFpTree, DiskFirstFpTree

    keys = list(range(5, 5 + 4 * n, 4))
    tids = [k * 3 for k in keys]
    lo, hi = min(bounds), max(bounds)
    results = set()
    for factory in (
        lambda: DiskBPlusTree(TreeEnvironment(page_size=512, buffer_pages=128)),
        lambda: MicroIndexTree(TreeEnvironment(page_size=1024, buffer_pages=128)),
        lambda: DiskFirstFpTree(TreeEnvironment(page_size=1024, buffer_pages=128)),
        lambda: CacheFirstFpTree(TreeEnvironment(page_size=1024, buffer_pages=128), num_keys_hint=10_000),
    ):
        index = factory()
        index.bulkload(keys, tids, fill=0.9)
        results.add(index.range_scan(lo, hi))
    assert len(results) == 1  # every structure returns the identical answer
