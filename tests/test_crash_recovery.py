"""Crash/torn-write injection and redo recovery, end to end.

The scenarios the WAL exists for: a crash point landing between the page
writes of a multi-page split, a torn log tail, a torn data-page write —
each must recover to a scrub-clean tree holding exactly the committed
transactions, deterministically (the same crash image always recovers to
the same bytes).
"""

import random

import pytest

from repro import (
    DiskBPlusTree,
    DiskFirstFpTree,
    MiniDbms,
    TreeEnvironment,
    WalManager,
    recover,
    scrub_tree,
)
from repro.faults import FaultPlan, SimulatedCrash
from repro.image import dump_tree_bytes
from repro.wal import CrashImage, RecoveryError, encode_record, scan_records

PAGE = 1024
FRAMES = 16


def fresh_tree(kind=DiskFirstFpTree):
    return kind(TreeEnvironment(page_size=PAGE, buffer_pages=FRAMES))


def loaded_tree(kind=DiskFirstFpTree, n=1000):
    tree = fresh_tree(kind)
    keys = list(range(0, 2 * n, 2))
    tree.bulkload(keys, [k + 1 for k in keys])
    return tree


def run_until_crash(plan, kind=DiskFirstFpTree, n_ops=300, checkpoint_interval=20):
    """Bulkload, attach a WAL with ``plan``, insert odd keys until a crash.

    Returns ``(wal, attempted)`` where ``attempted[i]`` is the key whose
    insert ran as transaction ``i + 1`` (committed or not).
    """
    tree = loaded_tree(kind)
    wal = WalManager(tree, plan=plan, checkpoint_interval=checkpoint_interval)
    attempted = []
    crashed = False
    try:
        for k in range(1, 2 * n_ops, 2):
            attempted.append(k)
            tree.insert(k, k + 1)
    except SimulatedCrash:
        crashed = True
    assert crashed, "the fault plan never fired"
    return wal, attempted


def expected_after(attempted, committed_txns, n=1000):
    """The key->value map a correct recovery must produce."""
    expected = {k: k + 1 for k in range(0, 2 * n, 2)}
    for i, key in enumerate(attempted):
        if i + 1 in committed_txns:
            expected[key] = key + 1
    return expected


class TestCrashMidSplit:
    def test_crash_inside_split_discards_the_transaction(self):
        # Find a transaction whose insert splits a page, then crash between
        # that split's WAL appends (a split logs several page images; the
        # +2 lands after the first image but before the commit).
        probe = loaded_tree()
        probe_wal = WalManager(probe)
        crash_at = None
        for k in range(1, 600, 2):
            before_appends = probe_wal.log.appends
            before_splits = probe.page_splits
            probe.insert(k, k + 1)
            if probe.page_splits > before_splits:
                assert probe_wal.log.appends - before_appends >= 4
                crash_at = before_appends + 2
                break
        assert crash_at is not None, "no insert split a page"

        wal, attempted = run_until_crash(FaultPlan.crash_point(wal_appends=crash_at))
        tree, stats = recover(wal.crash_state(), fresh_tree)
        assert stats.discarded_txns  # the mid-split transaction vanished
        assert dict(tree.items()) == expected_after(attempted, stats.committed_txns)
        scrub_tree(tree)

    def test_committed_inserts_survive_any_crash_point(self):
        for crash_at in (1, 2, 5, 17, 60, 201):
            wal, attempted = run_until_crash(FaultPlan.crash_point(wal_appends=crash_at))
            tree, stats = recover(wal.crash_state(), fresh_tree)
            assert dict(tree.items()) == expected_after(attempted, stats.committed_txns), crash_at

    def test_deletes_recover_too(self):
        tree = loaded_tree()
        wal = WalManager(tree, plan=FaultPlan.crash_point(wal_appends=120), checkpoint_interval=10)
        attempted = []
        try:
            for i in range(200):
                key = 2 * i
                attempted.append(key)
                tree.delete(key)
        except SimulatedCrash:
            pass
        recovered, stats = recover(wal.crash_state(), fresh_tree)
        expected = {k: k + 1 for k in range(0, 2000, 2)}
        for i, key in enumerate(attempted):
            if i + 1 in stats.committed_txns:
                del expected[key]
        assert dict(recovered.items()) == expected
        scrub_tree(recovered)


class TestDeterminism:
    def test_same_image_recovers_to_identical_bytes(self):
        wal, __ = run_until_crash(FaultPlan.crash_point(wal_appends=77))
        image = wal.crash_state()
        tree_a, stats_a = recover(image, fresh_tree)
        tree_b, stats_b = recover(image, fresh_tree)
        assert dump_tree_bytes(tree_a) == dump_tree_bytes(tree_b)
        assert stats_a == stats_b

    def test_same_seed_produces_identical_crash_image(self):
        plan = FaultPlan.crash_point(wal_appends=77)
        wal_a, __ = run_until_crash(plan)
        wal_b, __ = run_until_crash(plan)
        image_a, image_b = wal_a.crash_state(), wal_b.crash_state()
        assert image_a.wal_data == image_b.wal_data
        assert image_a.pages == image_b.pages


class TestTornWrites:
    def test_torn_wal_append_truncates_the_tail(self):
        wal, attempted = run_until_crash(FaultPlan.crash_point(torn_wal=150))
        tree, stats = recover(wal.crash_state(), fresh_tree)
        assert stats.truncated_bytes > 0  # the torn half-record was dropped
        assert stats.valid_wal_bytes < stats.wal_bytes
        assert dict(tree.items()) == expected_after(attempted, stats.committed_txns)
        scrub_tree(tree)

    def test_torn_page_write_is_healed_from_the_log(self):
        wal, attempted = run_until_crash(FaultPlan.crash_point(torn_page=30))
        image = wal.crash_state()
        tree, stats = recover(image, fresh_tree)
        assert len(stats.torn_pages) == 1
        assert stats.pages_restored >= 1
        assert dict(tree.items()) == expected_after(attempted, stats.committed_txns)
        scrub_tree(tree)

    def test_crash_after_page_write(self):
        wal, attempted = run_until_crash(FaultPlan.crash_point(page_writes=25))
        tree, stats = recover(wal.crash_state(), fresh_tree)
        assert dict(tree.items()) == expected_after(attempted, stats.committed_txns)
        scrub_tree(tree)


class TestRecoveryEdges:
    def test_empty_log_is_unrecoverable(self):
        image = CrashImage(wal_data=b"", pages={}, checksums={}, page_size=PAGE)
        with pytest.raises(RecoveryError):
            recover(image, fresh_tree)

    def test_unhealable_torn_page_raises(self):
        wal, __ = run_until_crash(FaultPlan.crash_point(torn_page=30))
        image = wal.crash_state()
        # Truncate the log to just the attach-time checkpoint: the torn
        # page's after-images vanish, so the tear cannot be healed.
        records = scan_records(image.wal_data)[0]
        checkpoint_only = CrashImage(
            wal_data=encode_record(records[0]),
            pages=image.pages,
            checksums=image.checksums,
            page_size=image.page_size,
        )
        with pytest.raises(RecoveryError):
            recover(checkpoint_only, fresh_tree)

    def test_recovery_charges_simulated_time(self):
        wal, __ = run_until_crash(FaultPlan.crash_point(wal_appends=100))
        __, stats = recover(wal.crash_state(), fresh_tree)
        assert stats.recovery_us > 0

    def test_disk_baseline_tree_recovers(self):
        wal, attempted = run_until_crash(
            FaultPlan.crash_point(wal_appends=80), kind=DiskBPlusTree
        )
        tree, stats = recover(wal.crash_state(), lambda: fresh_tree(DiskBPlusTree))
        assert dict(tree.items()) == expected_after(attempted, stats.committed_txns)
        scrub_tree(tree)


class TestPropertyBasedCrashRecovery:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_workload_random_crash(self, seed):
        # One seeded random workload, crashed at a seeded random WAL
        # append; the recovered tree must equal a fresh replay of exactly
        # the committed transactions.
        rng = random.Random(1000 + seed)
        base_keys = list(range(0, 4000, 4))
        n_ops = 250
        ops = []
        live = set(base_keys)
        for __ in range(n_ops):
            if live and rng.random() < 0.25:
                key = rng.choice(sorted(live))
                ops.append(("delete", key))
                live.discard(key)
            else:
                key = rng.randrange(1, 8000)
                ops.append(("insert", key))
                live.add(key)
        crash_at = rng.randrange(1, 4 * n_ops)

        def build():
            tree = fresh_tree()
            tree.bulkload(base_keys, [k + 1 for k in base_keys])
            return tree

        tree = build()
        wal = WalManager(
            tree,
            plan=FaultPlan.crash_point(wal_appends=crash_at),
            checkpoint_interval=rng.choice([0, 7, 25]),
        )
        # The workload may finish before the crash point fires; either way
        # the durable image must recover to exactly the committed prefix.
        try:
            for op, key in ops:
                if op == "insert":
                    tree.insert(key, key + 1)
                else:
                    tree.delete(key)
        except SimulatedCrash:
            pass
        recovered, stats = recover(wal.crash_state(), fresh_tree)
        scrub_tree(recovered)

        replay = build()
        for i, (op, key) in enumerate(ops):
            if i + 1 not in stats.committed_txns:
                continue
            if op == "insert":
                replay.insert(key, key + 1)
            else:
                replay.delete(key)
        assert dict(recovered.items()) == dict(replay.items())
        assert recovered.num_entries == replay.num_entries


class TestMiniDbmsCrashRecovery:
    def test_clean_crash_and_recover(self):
        db = MiniDbms(num_rows=500, page_size=PAGE, index_kind="fp-disk")
        db.enable_wal(checkpoint_interval=50)
        base = max(k for k, __ in db.index.items())
        inserted = [base + 1 + i for i in range(120)]
        for key in inserted:
            db.insert(key)
        stats = db.crash_and_recover()
        assert len(stats.committed_txns) == len(inserted)
        assert not stats.discarded_txns
        assert db.last_recovery is stats
        for key in inserted:
            assert db.lookup(key) is not None
        assert db.wal is None  # logging is off until re-enabled

    def test_crash_point_drops_uncommitted_rows(self):
        db = MiniDbms(num_rows=500, page_size=PAGE, index_kind="fp-disk")
        db.enable_wal(plan=FaultPlan.crash_point(wal_appends=200), checkpoint_interval=25)
        base = max(k for k, __ in db.index.items())
        attempted = []
        with pytest.raises(SimulatedCrash):
            for i in range(400):
                attempted.append(base + 1 + i)
                db.insert(attempted[-1])
        stats = db.crash_and_recover()
        # The crash can land on a COMMIT append itself: the transaction is
        # durable but the client never heard the ack, so committed may equal
        # the attempted count.
        committed = len(stats.committed_txns)
        assert 0 < committed <= len(attempted)
        for key in attempted[:committed]:
            assert db.lookup(key) is not None
        for key in attempted[committed:]:
            assert db.lookup(key) is None
        # The heap dropped the same uncommitted suffix as the index: every
        # surviving index entry can still fetch its row.
        assert db.table.num_rows == 500 + committed
        scan = db.scan(prefetchers=0)
        assert scan.row_count == 500 + committed

    def test_scan_reports_write_path_stats(self):
        db = MiniDbms(num_rows=300, page_size=PAGE, index_kind="fp-disk")
        db.enable_wal(checkpoint_interval=10)
        base = max(k for k, __ in db.index.items())
        for i in range(40):
            db.insert(base + 1 + i)
        stats = db.scan(prefetchers=0)
        assert stats.wal_appends > 0
        assert stats.page_writes > 0
        assert stats.disk_write_us > 0

    def test_enable_wal_twice_raises(self):
        db = MiniDbms(num_rows=200, page_size=PAGE, index_kind="fp-disk")
        db.enable_wal()
        with pytest.raises(RuntimeError):
            db.enable_wal()

    def test_recover_without_wal_raises(self):
        db = MiniDbms(num_rows=200, page_size=PAGE, index_kind="fp-disk")
        with pytest.raises(RuntimeError):
            db.crash_and_recover()
