"""Hand-computed tests for metric merging and fleet-wide ServerStats.merge."""

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.serve.stats import ServerStats

# -- primitive merges (every value hand-computed) ---------------------------


def test_counter_merge_adds():
    a, b = Counter("c"), Counter("c")
    a.inc(3)
    b.inc(4)
    a.merge_from(b)
    assert a.value == 7
    assert b.value == 4  # source untouched


def test_gauge_merge_adds_values_and_maxima():
    a, b = Gauge("g"), Gauge("g")
    a.set(4)
    a.set(2)  # value 2, max 4
    b.set(6)
    b.set(3)  # value 3, max 6
    a.merge_from(b)
    assert a.value == 5  # 2 + 3: a fleet's in-flight is the sum of members'
    assert a.max_value == 10  # 4 + 6: conservative upper bound on the true peak


def test_histogram_merge_bucketwise():
    a = Histogram("h", bounds=(1.0, 2.0, 4.0))
    b = Histogram("h", bounds=(1.0, 2.0, 4.0))
    a.record(0.5)  # bucket 0
    a.record(3.0)  # bucket 2
    b.record(1.5)  # bucket 1
    b.record(9.0)  # overflow
    a.merge_from(b)
    assert a.counts == [1, 1, 1, 1]
    assert a.count == 4
    assert a.total == 14.0
    assert a.min == 0.5
    assert a.max == 9.0


def test_histogram_merge_empty_source_keeps_extrema():
    a = Histogram("h", bounds=(1.0,))
    b = Histogram("h", bounds=(1.0,))
    a.record(0.5)
    a.merge_from(b)  # empty source must not clobber min/max with +/-inf
    assert a.min == 0.5 and a.max == 0.5 and a.count == 1


def test_histogram_merge_rejects_mismatched_bounds():
    a = Histogram("h", bounds=(1.0, 2.0))
    b = Histogram("h", bounds=(1.0, 3.0))
    with pytest.raises(ValueError, match="bucket bounds differ"):
        a.merge_from(b)


def test_registry_merge_creates_missing_metrics_with_same_shape():
    a, b = MetricsRegistry(), MetricsRegistry()
    b.counter("only.in.b").inc(5)
    b.gauge("depth").set(3)
    b.histogram("lat", bounds=(10.0, 20.0)).record(15.0)
    a.merge_from(b)
    assert a.value("only.in.b") == 5
    assert a.value("depth") == 3
    merged_hist = a.get("lat")
    assert merged_hist.bounds == (10.0, 20.0)
    assert merged_hist.counts == [0, 1, 0]


def test_registry_merge_accumulates_many_sources():
    total = MetricsRegistry()
    for value in (1, 10, 100):
        source = MetricsRegistry()
        source.counter("n").inc(value)
        total.merge_from(source)
    assert total.value("n") == 111


# -- ServerStats.merge ------------------------------------------------------


def _stats_a():
    stats = ServerStats()
    for __ in range(3):
        stats.issue()
    stats.complete("lookup", 200.0, rows=1)
    stats.complete("lookup", 200.0, rows=1)
    stats.shed()
    return stats  # issued 3 = completed 2 + shed 1 + in_flight 0


def _stats_b():
    stats = ServerStats()
    for __ in range(3):
        stats.issue()
    stats.complete("scan", 400.0, rows=64)
    stats.fail("scan")
    return stats  # issued 3 = completed 1 + failed 1 + in_flight 1


def test_server_stats_merge_hand_computed():
    a, b = _stats_a(), _stats_b()
    merged = a.merge(b)
    assert merged.issued == 6
    assert merged.completed == 3
    assert merged.shed_count == 1
    assert merged.failed == 1
    assert merged.in_flight == 1
    assert merged.rows_returned == 66
    # Conservation survives merging because every field sums.
    assert a.conserved() and b.conserved() and merged.conserved()
    # Histograms merged over the union of samples, not averaged.
    assert merged.latency_histogram("all").count == 3
    assert merged.latency_histogram("all").total == 800.0
    assert merged.latency_histogram("lookup").count == 2
    assert merged.latency_histogram("scan").count == 1


def test_server_stats_merge_leaves_sources_untouched():
    a, b = _stats_a(), _stats_b()
    a.merge(b)
    assert a.issued == 3 and b.issued == 3
    assert a.latency_histogram("all").count == 2
    assert b.in_flight == 1


def test_server_stats_merge_multiple_and_empty():
    a, b = _stats_a(), _stats_b()
    merged = a.merge(b, ServerStats())
    assert merged.issued == 6
    # Merging a lone empty plane is the identity.
    alone = ServerStats().merge()
    assert alone.issued == 0 and alone.conserved()
