"""Tests for the disk-optimized B+-Tree baseline."""

import numpy as np
import pytest

from repro.baselines import DiskBPlusTree, DiskPageLayout
from repro.btree import KEY4, KEY8
from repro.btree.context import TreeEnvironment
from repro.mem import MemorySystem

from index_contract import IndexContract, dense_keys


class TestDiskBPlusTreeContract(IndexContract):
    def make_index(self, **kwargs):
        kwargs.setdefault("page_size", 1024)
        kwargs.setdefault("buffer_pages", 512)
        return DiskBPlusTree(TreeEnvironment(**kwargs))


class TestDiskPageLayout:
    def test_capacity_matches_paper_example(self):
        # "an 8KB page can hold over 1000 entries" with 4B keys + 4B ids.
        layout = DiskPageLayout.compute(8192, key_size=4)
        assert layout.capacity == 1016

    def test_arrays_fit_in_page(self):
        for page_size in (512, 4096, 8192, 16384, 32768):
            layout = DiskPageLayout.compute(page_size, key_size=4)
            assert layout.ptr_offset + layout.capacity * layout.ptr_size <= page_size
            assert layout.key_offset + layout.capacity * layout.key_size <= layout.ptr_offset

    def test_key8_layout(self):
        layout = DiskPageLayout.compute(4096, key_size=8)
        assert layout.capacity == (4096 - 64) // 12

    def test_addresses(self):
        layout = DiskPageLayout.compute(4096, key_size=4)
        assert layout.key_address(1000, 0) == 1064
        assert layout.key_address(1000, 3) == 1076
        assert layout.ptr_address(1000, 0) == 1000 + layout.ptr_offset

    def test_too_small_page_rejected(self):
        with pytest.raises(ValueError):
            DiskPageLayout.compute(64, key_size=4)


class TestDiskTreeStructure:
    def make_tree(self, page_size=1024, **kw):
        return DiskBPlusTree(TreeEnvironment(page_size=page_size, buffer_pages=512, **kw))

    def test_multilevel_after_bulkload(self):
        tree = self.make_tree()
        keys = dense_keys(20000)
        tree.bulkload(keys, keys)
        assert tree.height >= 3
        tree.validate()

    def test_height_grows_on_root_split(self):
        tree = self.make_tree(page_size=512)
        height_before = tree.height
        for key in range(5000):
            tree.insert(key, key)
        assert tree.height > height_before
        tree.validate()

    def test_key8_tree_roundtrip(self):
        tree = self.make_tree(keyspec=KEY8)
        big = 1 << 40
        keys = [big + i * 10 for i in range(2000)]
        tree.bulkload(keys, list(range(2000)))
        assert tree.search(big + 370) == 37
        assert tree.search(big + 371) is None

    def test_leaf_chain_matches_items(self):
        tree = self.make_tree()
        keys = dense_keys(5000)
        tree.bulkload(keys, keys)
        total = 0
        last = -1
        for pid in tree.leaf_page_ids():
            page = tree.store.page(pid)
            assert page.level == 0
            assert int(page.keys[0]) > last
            last = int(page.keys[page.count - 1])
            total += page.count
        assert total == len(keys)

    def test_split_counters(self):
        tree = self.make_tree(page_size=512)
        keys = dense_keys(3000)
        tree.bulkload(keys, keys)
        assert tree.leaf_splits == 0
        for key in range(1, 3000, 2):
            if (key - 10) % 3 != 0:
                tree.insert(key, key)
        assert tree.leaf_splits > 0
        tree.validate()


class TestDiskTreeCacheBehaviour:
    """The cost-model properties the paper's Figure 3 analysis relies on."""

    def build(self, n=60000, page_size=8192):
        mem = MemorySystem()
        tree = DiskBPlusTree(
            TreeEnvironment(page_size=page_size, mem=mem, buffer_pages=1024)
        )
        keys = dense_keys(n)
        with mem.paused():
            tree.bulkload(keys, keys)
        mem.clear_caches()
        return tree, mem, keys

    def test_search_charges_dcache_stalls(self):
        tree, mem, keys = self.build()
        tree.search(keys[len(keys) // 2])
        assert mem.stats.dcache_stall_cycles > 0
        assert mem.stats.busy_cycles > 0

    def test_binary_search_misses_scale_with_page_size(self):
        """Bigger pages -> more probe misses per page (poor spatial locality)."""
        stalls = {}
        for page_size in (4096, 32768):
            tree, mem, keys = self.build(page_size=page_size)
            rng = np.random.default_rng(3)
            with mem.measure() as phase:
                for key in rng.choice(keys, size=50):
                    tree.search(int(key))
            stalls[page_size] = phase.dcache_stall_cycles / 50
        # A 32KB page has 8x the entries of a 4KB page: 3 more probe misses
        # per page level, though fewer levels; stalls per search must not
        # drop, and misses per *leaf* page strictly grow.
        assert stalls[32768] >= stalls[4096] * 0.9

    def test_insert_data_movement_dominates(self):
        """Insertion into a big sorted array moves ~half the page."""
        tree, mem, keys = self.build(page_size=32768)
        rng = np.random.default_rng(5)
        with mem.measure() as search_phase:
            for key in rng.choice(keys, size=30):
                tree.search(int(key))
        with mem.measure() as insert_phase:
            for key in rng.choice(keys, size=30):
                tree.insert(int(key) + 1, 1)
        assert insert_phase.total_cycles > 2 * search_phase.total_cycles

    def test_untraced_operations_charge_nothing(self):
        tree, mem, keys = self.build(n=5000)
        with mem.paused():
            tree.search(keys[0])
            tree.insert(keys[0] + 1, 5)
        assert mem.stats.total_cycles == 0

    def test_buffer_pool_overhead_in_busy_time(self):
        tree, mem, keys = self.build(n=5000)
        with mem.measure() as phase:
            tree.search(keys[10])
        # At least one buffer access per level.
        assert phase.busy_cycles >= tree.height * mem.cpu.buffer_pool_access
