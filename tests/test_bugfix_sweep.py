"""Regression tests for the accounting/deadline bug sweep.

Each test here fails on the pre-fix code:

* ``AsyncPageReader._race_with_hedge`` let a hedged attempt wait for
  ``hedge_after_us + timeout_us`` — the cutoff is now clamped to the
  per-attempt deadline and the race gets only the remaining budget.
* ``Disk.service`` charged no ``busy_time_us`` on the dead-disk rejection
  path, so a failed spindle reported zero utilization while rejecting
  commands.
* ``AsyncPageReader.preload`` routed through ``pool.access`` and charged
  one miss per preloaded page, polluting the 'in memory' baselines.
* ``BufferPool.pinned`` matched its frame on page id alone on exit, so a
  stale context manager could decrement a *newer* holder's pin after an
  invalidate + re-install of the same page into the same frame.
* ``MemorySystem.write`` fetched L2-resident lines without counting the
  L2 hit, understating ``stats.l2_hits`` on store-heavy phases.
"""

import pytest

from repro.des import Environment
from repro.faults import DiskFaultProfile, FaultInjector, FaultPlan, ReadFailedError
from repro.mem.hierarchy import MemorySystem
from repro.storage import (
    AsyncPageReader,
    BufferPool,
    BufferPoolExhausted,
    DiskArray,
    DiskParameters,
    PageStore,
    RetryPolicy,
    StorageConfig,
)


class FakePage:
    def __init__(self, label):
        self.label = label


def make_config(num_disks=1, frames=64, page_size=4096):
    return StorageConfig(
        page_size=page_size,
        num_disks=num_disks,
        buffer_pool_pages=frames,
        disk=DiskParameters(
            seek_time_us=5000,
            rotational_latency_us=3000,
            track_to_track_us=1000,
            transfer_rate_bytes_per_us=40.0,
        ),
    )


def make_stack(num_disks=1, frames=64, plan=None, mirrored=False, policy=None, seed=0):
    env = Environment()
    config = make_config(num_disks=num_disks, frames=frames)
    store = PageStore(config.page_size)
    pool = BufferPool(config, store)
    injector = FaultInjector(plan) if plan is not None else None
    disks = DiskArray(env, config, injector=injector, mirrored=mirrored)
    reader = AsyncPageReader(env, disks, pool, policy=policy, seed=seed)
    return env, store, pool, disks, reader


RANDOM_READ_US = 5000 + 3000 + 4096 / 40.0


def run_demand_expecting_failure(env, reader, pid):
    def proc():
        with pytest.raises(ReadFailedError) as excinfo:
            yield from reader.demand(pid)
        return excinfo.value

    return env.run(until=env.process(proc()))


# -- hedge cutoff vs per-attempt deadline -------------------------------------


class TestHedgeDeadlineClamp:
    def test_cutoff_clamped_when_deadline_precedes_hedge_point(self):
        # timeout_us < hedge_after_us < service time: the attempt must be
        # abandoned at the deadline.  Pre-fix, the primary was awaited for
        # the full (unclamped) hedge cutoff and its late receipt accepted,
        # ignoring the deadline entirely.
        policy = RetryPolicy(
            timeout_us=0.5 * RANDOM_READ_US,
            hedge_after_us=2 * RANDOM_READ_US,
            max_attempts=1,
            jitter_fraction=0.0,
        )
        env, store, pool, disks, reader = make_stack(
            num_disks=2, mirrored=True, policy=policy
        )
        pid = store.allocate(FakePage("x"))
        run_demand_expecting_failure(env, reader, pid)
        assert not pool.contains(pid)
        assert reader.timeouts == 1
        assert reader.hedges == 0  # no budget left after the clamped cutoff
        assert env.now == pytest.approx(0.5 * RANDOM_READ_US)

    def test_race_gets_only_the_remaining_budget(self):
        # Both replicas limp far past the deadline.  The hedge fires at the
        # cutoff, and the race may use only deadline - cutoff: the whole
        # attempt ends at exactly timeout_us.  Pre-fix it ended at
        # cutoff + timeout_us.
        plan = FaultPlan(default=DiskFaultProfile(limp_factor=50.0))
        policy = RetryPolicy(
            timeout_us=1.5 * RANDOM_READ_US,
            hedge_after_us=0.5 * RANDOM_READ_US,
            max_attempts=1,
            jitter_fraction=0.0,
        )
        env, store, pool, disks, reader = make_stack(
            num_disks=2, plan=plan, mirrored=True, policy=policy
        )
        pid = store.allocate(FakePage("x"))
        run_demand_expecting_failure(env, reader, pid)
        assert reader.hedges == 1
        assert env.now == pytest.approx(policy.timeout_us)

    def test_attempt_never_exceeds_timeout_under_faults(self):
        # Property-flavoured check across hedge/deadline orderings: a
        # single attempt's wall time on the DES clock never exceeds
        # timeout_us when every replica is slower than the deadline.
        plan = FaultPlan(default=DiskFaultProfile(limp_factor=50.0))
        for hedge_after in (0.25, 0.9, 1.0, 1.7, 4.0):
            policy = RetryPolicy(
                timeout_us=RANDOM_READ_US,
                hedge_after_us=hedge_after * RANDOM_READ_US,
                max_attempts=1,
                jitter_fraction=0.0,
            )
            env, store, pool, disks, reader = make_stack(
                num_disks=2, plan=plan, mirrored=True, policy=policy
            )
            pid = store.allocate(FakePage("x"))
            run_demand_expecting_failure(env, reader, pid)
            assert env.now <= policy.timeout_us * (1 + 1e-9), hedge_after


# -- dead-disk occupancy ------------------------------------------------------


class TestDeadDiskAccounting:
    def test_rejections_charge_busy_time(self):
        plan = FaultPlan.disk_failure(0, at_us=0.0)
        policy = RetryPolicy(max_attempts=3, jitter_fraction=0.0, backoff_base_us=100.0)
        env, store, pool, disks, reader = make_stack(plan=plan, policy=policy)
        pid = store.allocate(FakePage("x"))
        run_demand_expecting_failure(env, reader, pid)
        disk = disks.disks[0]
        assert disk.faults == 3
        # Each rejection occupies the spindle for failed_response_us.
        assert disk.busy_time_us == pytest.approx(3 * plan.failed_response_us)
        assert disks.utilization()[0] > 0.0

    def test_attribute_and_registry_metric_agree(self):
        plan = FaultPlan.disk_failure(0, at_us=0.0)
        policy = RetryPolicy(max_attempts=2, jitter_fraction=0.0, backoff_base_us=100.0)
        env, store, pool, disks, reader = make_stack(plan=plan, policy=policy)
        pid = store.allocate(FakePage("x"))
        run_demand_expecting_failure(env, reader, pid)
        disk = disks.disks[0]
        assert disks.obs.metrics.value("disk0.busy_time_us") == disk.busy_time_us > 0


# -- preload statistics -------------------------------------------------------


class TestPreloadStats:
    def test_preload_counts_no_misses(self):
        env, store, pool, disks, reader = make_stack(frames=32)
        pids = [store.allocate(FakePage(i)) for i in range(8)]
        reader.preload(pids)
        assert all(pool.contains(pid) for pid in pids)
        assert pool.misses == 0
        assert pool.hits == 0

    def test_preload_eviction_churn_is_reset(self):
        # Preloading more pages than frames exercises eviction; none of
        # that churn may leak into the measured phase's statistics.
        env, store, pool, disks, reader = make_stack(frames=4)
        pids = [store.allocate(FakePage(i)) for i in range(12)]
        reader.preload(pids)
        assert pool.misses == 0 and pool.hits == 0
        # The measured phase starts clean: first access to a resident page
        # is the run's first hit.
        resident = [pid for pid in pids if pool.contains(pid)]
        pool.access(resident[0])
        assert (pool.hits, pool.misses) == (1, 0)


# -- pin generations ----------------------------------------------------------


class TestPinGenerations:
    def test_stale_exit_cannot_steal_newer_pin(self):
        config = make_config(frames=1)
        store = PageStore(config.page_size)
        pool = BufferPool(config, store)
        a = store.allocate(FakePage("a"))
        b = store.allocate(FakePage("b"))

        stale = pool.pinned(a)
        stale.__enter__()
        pool.invalidate(a)  # pins die with the page
        frame = pool.install(a)  # same page, same (only) frame, new generation

        fresh = pool.pinned(a)
        fresh.__enter__()
        stale.__exit__(None, None, None)  # must NOT decrement the new pin

        # The fresh pin still protects the frame: nothing can be evicted.
        with pytest.raises(BufferPoolExhausted):
            pool.access(b)

        fresh.__exit__(None, None, None)
        pool.access(b)  # now the frame is free again
        assert pool.contains(b)
        assert pool._pin_count[frame] == 0

    def test_plain_pin_unpin_still_balances(self):
        config = make_config(frames=2)
        store = PageStore(config.page_size)
        pool = BufferPool(config, store)
        a = store.allocate(FakePage("a"))
        with pool.pinned(a):
            with pool.pinned(a):
                assert pool._pin_count[pool.frame_of(a)] == 2
        assert pool._pin_count[pool.frame_of(a)] == 0

    def test_unpin_after_eviction_is_a_no_op(self):
        # The classic pre-generation case: page evicted (not invalidated)
        # while logically pinned would hit the page-id guard; still works.
        config = make_config(frames=1)
        store = PageStore(config.page_size)
        pool = BufferPool(config, store)
        a = store.allocate(FakePage("a"))
        b = store.allocate(FakePage("b"))
        cm = pool.pinned(a)
        cm.__enter__()
        pool.invalidate(a)
        pool.access(b)  # frame reused by b
        cm.__exit__(None, None, None)  # must not touch b's frame
        assert pool._pin_count[pool.frame_of(b)] == 0


# -- store-path L2 hits -------------------------------------------------------


class TestStorePathL2Hits:
    def test_l2_resident_store_counts_an_l2_hit(self):
        ms = MemorySystem()
        line = next(iter(ms.config.lines_touched(0, 4)))
        ms.l2.insert(line)
        before = ms.stats.l2_hits
        ms.write(0, 4)
        assert ms.stats.l2_hits == before + 1
        assert ms.stats.store_fetches == 0  # no memory-bus fetch happened

    def test_full_miss_store_still_counts_a_fetch(self):
        ms = MemorySystem()
        ms.write(0, 4)
        assert ms.stats.store_fetches == 1
        assert ms.stats.l2_hits == 0

    def test_load_and_store_l2_hit_accounting_agree(self):
        # A demand load of an L2-resident line and a store to another
        # L2-resident line each count exactly one L2 hit.
        ms = MemorySystem()
        line_size = ms.config.line_size
        load_line = next(iter(ms.config.lines_touched(0, 4)))
        store_line = next(iter(ms.config.lines_touched(line_size, 4)))
        ms.l2.insert(load_line)
        ms.l2.insert(store_line)
        ms.read(0, 4)
        ms.write(line_size, 4)
        assert ms.stats.l2_hits == 2
