"""Tests for the optional hardware next-line prefetcher ablation."""

import numpy as np

from repro.bench.cache_runner import build_tree, measure_operations
from repro.mem import CpuCostModel, MemoryConfig, MemorySystem
from repro.workloads import KeyWorkload


def test_disabled_by_default():
    mem = MemorySystem()
    mem.read(0, 4)
    mem.read(64, 4)  # next line: must be a full miss with no prefetcher
    assert mem.stats.dcache_stall_cycles == 300


def test_next_line_prefetch_covers_sequential_reads():
    mem = MemorySystem(MemoryConfig(hardware_prefetch_lines=1), CpuCostModel())
    mem.read(0, 4)  # miss; hardware fetches line 1
    first_stall = mem.stats.dcache_stall_cycles
    mem.busy(200)  # give the prefetch time to land
    mem.read(64, 4)
    assert mem.stats.dcache_stall_cycles == first_stall
    assert mem.stats.prefetch_covered == 1


def test_random_reads_gain_nothing():
    """Pointer-chasing gets no coverage — only wasted bus bandwidth."""
    mem = MemorySystem(MemoryConfig(hardware_prefetch_lines=2), CpuCostModel())
    for line in (0, 100, 7, 55, 200):
        mem.read(line * 64, 4)
    assert mem.stats.prefetch_covered == 0
    # Useless prefetches contend for the bus, so stalls can only grow.
    assert 5 * 150 <= mem.stats.dcache_stall_cycles <= 5 * 150 + 5 * 2 * 10


def test_sequential_scan_faster_with_hardware_prefetch():
    plain = MemorySystem()
    assisted = MemorySystem(MemoryConfig(hardware_prefetch_lines=2), CpuCostModel())
    for mem in (plain, assisted):
        for line in range(64):
            mem.read(line * 64, 4)
            mem.busy(20)
    assert assisted.stats.dcache_stall_cycles < plain.stats.dcache_stall_cycles


def test_fp_tree_still_beats_baseline_with_hardware_prefetch():
    """Software (jump-pointer) prefetch is not subsumed by a stream prefetcher."""
    workload = KeyWorkload(40_000)
    keys, tids = workload.bulkload_arrays()
    lo, hi = int(keys[1000]), int(keys[30_000])
    cycles = {}
    for kind in ("disk", "fp-disk"):
        mem = MemorySystem(MemoryConfig(hardware_prefetch_lines=1), CpuCostModel())
        tree = build_tree(kind, keys, tids, page_size=16384, mem=mem)
        phase = measure_operations(mem, lambda r: tree.range_scan(*r), [(lo, hi)])
        cycles[kind] = phase.total_cycles
    assert cycles["fp-disk"] < cycles["disk"]
